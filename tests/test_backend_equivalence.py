"""Python / NumPy evaluation-backend equivalence (property-based).

The NumPy fast path of :mod:`repro.core.evaluator_np` must be a pure
performance knob: on any instance it has to agree with the pure-Python
reference of :mod:`repro.core.evaluator` within floating-point noise (1e-9
relative), bit-for-bit on the shared trivial cases (``lambda = 0``, empty
schedules), and cache keys must not depend on the backend so that a warm
cache serves both.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    EVAL_BACKENDS,
    Platform,
    Schedule,
    SweepState,
    Task,
    Workflow,
    batch_evaluate,
    compute_lost_work,
    evaluate_schedule,
    resolve_backend,
)
from repro.core.backend import AUTO_NUMPY_MIN_TASKS, BACKEND_ENV_VAR
from repro.runtime import ResultCache
from repro.runtime.keys import evaluation_key
from repro.runtime.runner import CampaignRunner, WorkUnit, evaluate_schedule_cached
from repro.experiments.scenarios import Scenario
from repro.workflows import generators


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
rate_strategy = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=0.05, allow_nan=False, allow_infinity=False),
)
downtime_strategy = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def random_instance(draw):
    """A random DAG, a valid schedule with a random checkpoint set, a platform."""
    n = draw(st.integers(min_value=1, max_value=12))
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=300.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    edge_flags = draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    edges = []
    flag_index = 0
    for i in range(n):
        for j in range(i + 1, n):
            if edge_flags[flag_index]:
                edges.append((i, j))
            flag_index += 1
    factor = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    tasks = [Task(index=i, weight=w) for i, w in enumerate(weights)]
    workflow = Workflow(tasks, edges).with_checkpoint_costs(
        mode="proportional", factor=factor
    )
    checkpoint_flags = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    checkpointed = {i for i, flag in enumerate(checkpoint_flags) if flag}
    # Natural order 0..n-1 is always a valid linearization for i<j edges.
    schedule = Schedule(workflow, range(n), checkpointed)
    # The platform draw covers the full scenario space: D > 0 and p > 1
    # are first-class grid axes, so the backends must agree there too.  The
    # drawn rate bounds the *effective* platform rate (p x rate/p), keeping
    # the failure pressure in the same regime the p=1 strategy explored.
    processors = draw(st.integers(min_value=1, max_value=8))
    platform = Platform(
        processors=processors,
        processor_failure_rate=draw(rate_strategy) / processors,
        downtime=draw(downtime_strategy),
    )
    return workflow, schedule, platform


def _assert_close(a: float, b: float, *, rel: float = 1e-9) -> None:
    if math.isinf(a) or math.isinf(b):
        assert a == b
        return
    assert abs(a - b) <= rel * max(1.0, abs(a), abs(b))


# ----------------------------------------------------------------------
# Numerical equivalence
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @given(data=random_instance())
    @settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_backends_agree_within_1e9_relative(self, data):
        _, schedule, platform = data
        py = evaluate_schedule(schedule, platform, backend="python")
        np_ = evaluate_schedule(schedule, platform, backend="numpy")
        _assert_close(py.expected_makespan, np_.expected_makespan)
        assert py.failure_free_work == np_.failure_free_work
        _assert_close(py.failure_free_makespan, np_.failure_free_makespan)
        assert len(py.expected_task_times) == len(np_.expected_task_times)
        for a, b in zip(py.expected_task_times, np_.expected_task_times):
            _assert_close(a, b)

    @given(data=random_instance())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_probability_tables_agree(self, data):
        _, schedule, platform = data
        py = evaluate_schedule(
            schedule, platform, backend="python", keep_probabilities=True
        )
        np_ = evaluate_schedule(
            schedule, platform, backend="numpy", keep_probabilities=True
        )
        assert py.event_probabilities is not None
        assert np_.event_probabilities is not None
        for row_py, row_np in zip(py.event_probabilities, np_.event_probabilities):
            assert len(row_py) == len(row_np)
            for a, b in zip(row_py, row_np):
                assert abs(a - b) <= 1e-9

    @given(data=random_instance())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_precomputed_lost_work_matches_internal_fill(self, data):
        """The numpy path fills its own loss matrix; feeding it the reference
        LostWork arrays must give the same answer."""
        _, schedule, platform = data
        lw = compute_lost_work(schedule)
        direct = evaluate_schedule(schedule, platform, backend="numpy")
        reused = evaluate_schedule(
            schedule, platform, backend="numpy", lost_work=lw
        )
        _assert_close(direct.expected_makespan, reused.expected_makespan)

    @given(data=random_instance())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_batch_evaluate_matches_per_schedule(self, data):
        workflow, schedule, platform = data
        n = workflow.n_tasks
        sets = [
            frozenset(),
            schedule.checkpointed,
            frozenset(range(n)),
            frozenset(range(0, n, 2)),
        ]
        batch = batch_evaluate(workflow, schedule.order, sets, platform, backend="numpy")
        assert len(batch) == len(sets)
        for selected, evaluation in zip(sets, batch):
            ref = evaluate_schedule(
                Schedule(workflow, schedule.order, selected), platform, backend="python"
            )
            _assert_close(evaluation.expected_makespan, ref.expected_makespan)
            _assert_close(evaluation.failure_free_makespan, ref.failure_free_makespan)

    def test_failure_free_platform_is_bit_for_bit(self):
        wf = generators.chain_workflow(7, weights=[3, 1, 4, 1, 5, 9, 2]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        schedule = Schedule(wf, range(7), {1, 4})
        platform = Platform.failure_free()
        py = evaluate_schedule(schedule, platform, backend="python")
        np_ = evaluate_schedule(schedule, platform, backend="numpy")
        # lambda = 0 short-circuits through shared code: exact equality.
        assert py.expected_makespan == np_.expected_makespan
        assert py.expected_task_times == np_.expected_task_times

    def test_product_overflow_saturates_like_python(self):
        """inf can arise from Equation (1)'s *product* (exp(~695)/lam for a
        tiny lam) without either exponent crossing the overflow guard; the
        numpy kernel must still return inf, not NaN, when such a value meets
        a clipped-to-zero event probability."""
        n_mid = 100
        weights = [6.45e10] + [1e9] * n_mid + [5e9]
        tasks = [Task(index=i, weight=w) for i, w in enumerate(weights)]
        wf = Workflow(tasks, [(0, n_mid + 1)]).with_checkpoint_costs(
            mode="proportional", factor=0.0
        )
        schedule = Schedule(wf, range(n_mid + 2), ())
        platform = Platform.from_platform_rate(1e-8)
        py = evaluate_schedule(schedule, platform, backend="python")
        np_ = evaluate_schedule(schedule, platform, backend="numpy")
        assert math.isinf(py.expected_makespan)
        assert np_.expected_makespan == py.expected_makespan

    def test_empty_schedule_is_bit_for_bit(self):
        wf = Workflow([], [])
        schedule = Schedule(wf, (), ())
        platform = Platform.from_platform_rate(1e-3)
        py = evaluate_schedule(schedule, platform, backend="python")
        np_ = evaluate_schedule(schedule, platform, backend="numpy")
        assert py == np_
        assert py.expected_makespan == 0.0


# ----------------------------------------------------------------------
# Incremental sweep engine: bit-for-bit with per-candidate evaluation
# ----------------------------------------------------------------------
class TestIncrementalSweep:
    """The delta engine is a pure performance knob on the numpy backend.

    Whatever sequence of checkpoint sets a :class:`SweepState` is driven
    through — single toggles, add/remove/re-add round trips, arbitrary
    multi-toggle jumps — every evaluation must be *bit-for-bit* equal to a
    fresh per-candidate ``evaluate_schedule(..., backend="numpy")``, and
    within float noise of the pure-Python reference.  The instances cover
    ``D > 0`` and ``p > 1`` platforms (the ``random_instance`` strategy
    draws both).
    """

    @given(
        data=random_instance(),
        toggles=st.lists(
            st.integers(min_value=0, max_value=10**6), min_size=1, max_size=14
        ),
        jump=st.lists(st.integers(min_value=0, max_value=10**6), max_size=8),
        readd=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_sweep_is_bit_for_bit_vs_per_candidate(self, data, toggles, jump, readd):
        workflow, schedule, platform = data
        n = workflow.n_tasks
        order = schedule.order
        state = SweepState(workflow, order, platform, backend="numpy")

        def check(selected: frozenset[int]) -> None:
            got = state.evaluate(selected)
            ref = evaluate_schedule(
                Schedule(workflow, order, selected), platform, backend="numpy"
            )
            assert got.expected_makespan == ref.expected_makespan
            assert got.expected_task_times == ref.expected_task_times
            _assert_close(got.failure_free_makespan, ref.failure_free_makespan)
            py = evaluate_schedule(
                Schedule(workflow, order, selected), platform, backend="python"
            )
            _assert_close(py.expected_makespan, got.expected_makespan)

        current = set(schedule.checkpointed)
        check(frozenset(current))  # initial (multi-toggle from empty)
        for raw in toggles:  # single-toggle moves, incl. remove / re-add
            current ^= {raw % n}
            check(frozenset(current))
        current = {raw % n for raw in jump}  # arbitrary multi-toggle jump
        check(frozenset(current))
        task = readd % n  # explicit add -> remove -> re-add round trip
        for _ in range(3):
            current ^= {task}
            check(frozenset(current))

    @given(data=random_instance())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_batch_evaluate_is_bit_for_bit_on_numpy(self, data):
        """The batch front door inherits the sweep's exactness guarantee."""
        workflow, schedule, platform = data
        n = workflow.n_tasks
        sets = [
            frozenset(),
            schedule.checkpointed,
            schedule.checkpointed | {0},
            schedule.checkpointed - {0},
            frozenset(range(n)),
        ]
        batch = batch_evaluate(workflow, schedule.order, sets, platform, backend="numpy")
        for selected, evaluation in zip(sets, batch):
            ref = evaluate_schedule(
                Schedule(workflow, schedule.order, selected), platform, backend="numpy"
            )
            assert evaluation.expected_makespan == ref.expected_makespan


# ----------------------------------------------------------------------
# Cache-key equivalence: warm caches are backend-agnostic
# ----------------------------------------------------------------------
class TestCacheKeyEquivalence:
    def _schedule(self):
        wf = generators.layered_workflow(3, 4, seed=7).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        return Schedule(wf, wf.topological_order(), {1, 5})

    def test_evaluation_key_ignores_backend(self):
        schedule = self._schedule()
        platform = Platform.from_platform_rate(1e-3)
        # The key is a pure function of (schedule, platform): no backend enters.
        assert evaluation_key(schedule, platform) == evaluation_key(schedule, platform)

    def test_cache_warmed_by_python_serves_numpy(self):
        schedule = self._schedule()
        platform = Platform.from_platform_rate(1e-3)
        cache = ResultCache()
        warmed = evaluate_schedule_cached(schedule, platform, cache, backend="python")
        hit = evaluate_schedule_cached(schedule, platform, cache, backend="numpy")
        # The second call is a hit: it returns the python-computed values
        # verbatim, whatever backend was requested.
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert hit.expected_makespan == warmed.expected_makespan
        assert hit.expected_task_times == warmed.expected_task_times

    def test_cache_warmed_by_numpy_serves_python(self):
        schedule = self._schedule()
        platform = Platform.from_platform_rate(1e-3)
        cache = ResultCache()
        warmed = evaluate_schedule_cached(schedule, platform, cache, backend="numpy")
        hit = evaluate_schedule_cached(schedule, platform, cache, backend="python")
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert hit.expected_makespan == warmed.expected_makespan

    def test_unit_key_ignores_backend(self):
        scenario = Scenario(
            family="montage", n_tasks=20, failure_rate=1e-3, seed=3, label="eq"
        )
        with CampaignRunner() as runner:
            keys = {
                runner._unit_key(
                    WorkUnit(scenario=scenario, heuristic="DF-CkptW", backend=backend)
                )
                for backend in (None, "auto", "python", "numpy")
            }
        assert len(keys) == 1


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestBackendResolution:
    @staticmethod
    def _auto_array_backend() -> str:
        """What ``auto`` resolves to for large instances on this machine.

        The compiled backend outranks numpy when a C toolchain is present;
        without one, ``auto`` silently keeps numpy (the explicit assertion
        of the graceful-degradation contract lives in
        ``tests/test_backend_registry.py``).
        """
        from repro.core.evaluator_native import native_available

        return "native" if native_available() else "numpy"

    def test_known_names(self):
        assert set(EVAL_BACKENDS) == {"auto", "python", "numpy", "native"}
        assert resolve_backend("python") == "python"
        assert resolve_backend("numpy") == "numpy"  # numpy installed in CI

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            resolve_backend("fortran")

    def test_auto_prefers_python_for_tiny_instances(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        array_backend = self._auto_array_backend()
        assert resolve_backend("auto", n_tasks=AUTO_NUMPY_MIN_TASKS - 1) == "python"
        assert resolve_backend("auto", n_tasks=AUTO_NUMPY_MIN_TASKS) == array_backend
        assert resolve_backend(None) == array_backend

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend(None, n_tasks=10_000) == "python"
        assert resolve_backend("auto", n_tasks=10_000) == "python"
        # An explicit argument wins over the environment.
        assert resolve_backend("numpy", n_tasks=10_000) == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "not-a-backend")
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            resolve_backend(None)

    def test_environment_auto_is_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        assert resolve_backend(None, n_tasks=4) == "python"
        assert resolve_backend(None, n_tasks=10_000) == self._auto_array_backend()


# ----------------------------------------------------------------------
# End-to-end: heuristic rows through both backends
# ----------------------------------------------------------------------
class TestHeuristicBackends:
    @pytest.mark.parametrize("heuristic", ["DF-CkptW", "BF-CkptPer", "DF-CkptAlws"])
    def test_solve_heuristic_backend_agreement(self, heuristic):
        from repro import solve_heuristic

        wf = generators.layered_workflow(4, 5, seed=11).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(2e-3)
        py = solve_heuristic(wf, platform, heuristic, rng=0, backend="python")
        np_ = solve_heuristic(wf, platform, heuristic, rng=0, backend="numpy")
        _assert_close(py.expected_makespan, np_.expected_makespan, rel=1e-9)
        # The searches walk identical candidate lists, so the winning
        # schedule can only differ on exact floating-point ties.
        assert py.schedule.order == np_.schedule.order

    def test_refinement_backend_agreement(self):
        from repro.heuristics import local_search_checkpoints

        wf = generators.layered_workflow(3, 4, seed=2).with_checkpoint_costs(
            mode="proportional", factor=0.2
        )
        schedule = Schedule(wf, wf.topological_order(), {0})
        platform = Platform.from_platform_rate(5e-3)
        py = local_search_checkpoints(schedule, platform, backend="python")
        np_ = local_search_checkpoints(schedule, platform, backend="numpy")
        _assert_close(py.expected_makespan, np_.expected_makespan, rel=1e-9)
        assert py.evaluations == np_.evaluations
