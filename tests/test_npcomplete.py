"""Tests for the SUBSET-SUM reduction of Theorem 2."""

from __future__ import annotations

import itertools

import pytest

from repro.theory.npcomplete import (
    build_reduction,
    certificate_is_valid,
    scaled_expected_makespan,
    solve_subset_sum_by_reduction,
)


class TestReductionConstruction:
    def test_structure_is_a_join(self):
        reduction = build_reduction([3, 5, 7], 8)
        assert reduction.workflow.is_join()
        assert reduction.workflow.n_tasks == 4
        assert reduction.workflow.task(reduction.sink_index).weight == 0.0

    def test_checkpoint_costs_positive_and_recovery_zero(self):
        reduction = build_reduction([2, 4, 6], 6)
        for i in range(reduction.n_items):
            task = reduction.workflow.task(i)
            assert task.checkpoint_cost > 0.0
            assert task.recovery_cost == 0.0

    def test_default_failure_rate_is_inverse_min_weight(self):
        reduction = build_reduction([2, 4, 6], 6)
        assert reduction.platform.failure_rate == pytest.approx(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_reduction([], 1)
        with pytest.raises(ValueError):
            build_reduction([1, -2], 1)
        with pytest.raises(ValueError):
            build_reduction([1, 2], -1)
        with pytest.raises(ValueError):
            build_reduction([1, 2], 2, failure_rate=0.1)
        with pytest.raises(ValueError):
            # Items heavier than the target are rejected (see module docstring).
            build_reduction([1, 5], 3)


class TestCertificates:
    def test_exact_subset_meets_threshold(self):
        weights = [3.0, 5.0, 7.0, 2.0]
        target = 9.0  # 7 + 2
        reduction = build_reduction(weights, target)
        non_ckpt = {2, 3}
        checkpointed = [i for i in range(4) if i not in non_ckpt]
        assert certificate_is_valid(reduction, checkpointed)

    def test_wrong_subsets_exceed_threshold(self):
        weights = [3.0, 5.0, 7.0, 2.0]
        target = 9.0
        reduction = build_reduction(weights, target)
        for size in range(5):
            for non_ckpt in itertools.combinations(range(4), size):
                if sum(weights[i] for i in non_ckpt) == target:
                    continue
                checkpointed = [i for i in range(4) if i not in non_ckpt]
                assert not certificate_is_valid(reduction, checkpointed), non_ckpt

    def test_threshold_is_the_minimum_of_the_scaled_makespan(self):
        weights = [4.0, 6.0, 10.0]
        target = 10.0
        reduction = build_reduction(weights, target)
        values = []
        for size in range(4):
            for non_ckpt in itertools.combinations(range(3), size):
                checkpointed = [i for i in range(3) if i not in non_ckpt]
                values.append(scaled_expected_makespan(reduction, checkpointed))
        assert min(values) == pytest.approx(reduction.threshold, rel=1e-9)

    def test_sink_in_checkpoint_set_is_ignored(self):
        reduction = build_reduction([3.0, 5.0], 5.0)
        with_sink = scaled_expected_makespan(reduction, {0, reduction.sink_index})
        without = scaled_expected_makespan(reduction, {0})
        assert with_sink == pytest.approx(without)


class TestSolveSubsetSum:
    @pytest.mark.parametrize(
        "weights, target, feasible",
        [
            ([3, 5, 7], 8, True),
            ([3, 5, 7], 15, True),
            ([3, 5, 7], 11, False),
            ([3, 5, 7], 14, False),
            ([1, 2, 4, 8], 13, True),
            ([2, 4, 6], 9, False),
        ],
    )
    def test_small_instances(self, weights, target, feasible):
        found, subset = solve_subset_sum_by_reduction(weights, target)
        assert found is feasible
        if feasible:
            assert sum(weights[i] for i in subset) == pytest.approx(target)
