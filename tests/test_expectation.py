"""Unit tests for the closed-form expectations (Equation 1 and friends)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import expected_execution_time, expected_time_lost, success_probability
from repro.core.expectation import expected_number_of_failures


class TestExpectedExecutionTime:
    def test_failure_free_limit(self):
        assert expected_execution_time(10.0, 2.0, 1.0, 0.0) == pytest.approx(12.0)

    def test_matches_equation_one(self):
        lam, downtime = 1e-2, 3.0
        w, c, r = 40.0, 4.0, 2.0
        expected = math.exp(lam * r) * (1.0 / lam + downtime) * (math.exp(lam * (w + c)) - 1.0)
        assert expected_execution_time(w, c, r, lam, downtime) == pytest.approx(expected)

    def test_zero_work_zero_checkpoint_is_zero(self):
        assert expected_execution_time(0.0, 0.0, 5.0, 1e-2) == 0.0

    def test_increasing_in_work(self):
        values = [expected_execution_time(w, 1.0, 1.0, 1e-2) for w in (1, 5, 10, 50)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_increasing_in_failure_rate(self):
        values = [expected_execution_time(10.0, 1.0, 1.0, lam) for lam in (0.0, 1e-4, 1e-2, 1e-1)]
        assert values == sorted(values)

    def test_increasing_in_recovery(self):
        low = expected_execution_time(10.0, 1.0, 0.0, 1e-2)
        high = expected_execution_time(10.0, 1.0, 10.0, 1e-2)
        assert high > low

    def test_increasing_in_downtime(self):
        low = expected_execution_time(10.0, 1.0, 1.0, 1e-2, downtime=0.0)
        high = expected_execution_time(10.0, 1.0, 1.0, 1e-2, downtime=60.0)
        assert high > low

    def test_always_at_least_failure_free_time(self):
        for lam in (0.0, 1e-4, 1e-2):
            assert expected_execution_time(10.0, 2.0, 1.0, lam) >= 12.0 - 1e-12

    def test_overflow_saturates_to_inf(self):
        assert expected_execution_time(1e6, 0.0, 0.0, 1.0) == math.inf

    @pytest.mark.parametrize("kwargs", [
        {"work": -1.0, "checkpoint": 0.0, "recovery": 0.0, "failure_rate": 0.1},
        {"work": 1.0, "checkpoint": -1.0, "recovery": 0.0, "failure_rate": 0.1},
        {"work": 1.0, "checkpoint": 0.0, "recovery": -1.0, "failure_rate": 0.1},
        {"work": 1.0, "checkpoint": 0.0, "recovery": 0.0, "failure_rate": -0.1},
        {"work": 1.0, "checkpoint": 0.0, "recovery": 0.0, "failure_rate": 0.1, "downtime": -1.0},
    ])
    def test_negative_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            expected_execution_time(**kwargs)

    def test_against_direct_monte_carlo(self):
        """Simulate the renewal process directly and compare with the formula."""
        rng = np.random.default_rng(7)
        lam, downtime = 0.02, 1.5
        w, c, r = 30.0, 3.0, 2.0
        total = 0.0
        n_runs = 20000
        for _ in range(n_runs):
            clock = 0.0
            remaining = w + c  # first attempt has no recovery
            while True:
                ttf = rng.exponential(1.0 / lam)
                if ttf >= remaining:
                    clock += remaining
                    break
                clock += ttf + downtime
                remaining = r + w + c
            total += clock
        estimate = total / n_runs
        analytical = expected_execution_time(w, c, r, lam, downtime)
        assert estimate == pytest.approx(analytical, rel=0.02)


class TestExpectedTimeLost:
    def test_zero_work(self):
        assert expected_time_lost(0.0, 1e-2) == 0.0

    def test_failure_free_limit_is_half(self):
        assert expected_time_lost(10.0, 0.0) == pytest.approx(5.0, rel=1e-6)

    def test_matches_formula(self):
        lam, w = 1e-2, 50.0
        expected = 1.0 / lam - w / (math.exp(lam * w) - 1.0)
        assert expected_time_lost(w, lam) == pytest.approx(expected)

    def test_tiny_rate_stable(self):
        # The naive formula is 0/0-ish here; the Taylor branch must kick in.
        assert expected_time_lost(10.0, 1e-14) == pytest.approx(5.0, rel=1e-6)

    def test_bounded_by_work_and_mtbf(self):
        lam, w = 1e-3, 200.0
        value = expected_time_lost(w, lam)
        assert 0.0 < value < min(w, 1.0 / lam)

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            expected_time_lost(-1.0, 0.1)
        with pytest.raises(ValueError):
            expected_time_lost(1.0, -0.1)


class TestSuccessProbability:
    def test_zero_rate(self):
        assert success_probability(100.0, 0.0) == 1.0

    def test_exponential_decay(self):
        assert success_probability(100.0, 1e-2) == pytest.approx(math.exp(-1.0))

    def test_zero_duration(self):
        assert success_probability(0.0, 10.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            success_probability(-1.0, 0.1)
        with pytest.raises(ValueError):
            success_probability(1.0, -0.1)


class TestExpectedNumberOfFailures:
    def test_zero_rate(self):
        assert expected_number_of_failures(10.0, 1.0, 1.0, 0.0) == 0.0

    def test_positive_for_positive_rate(self):
        assert expected_number_of_failures(10.0, 1.0, 1.0, 1e-2) > 0.0

    def test_increases_with_work(self):
        small = expected_number_of_failures(1.0, 0.0, 0.0, 1e-2)
        large = expected_number_of_failures(100.0, 0.0, 0.0, 1e-2)
        assert large > small

    def test_matches_geometric_argument(self):
        lam, w, c, r = 0.05, 10.0, 1.0, 2.0
        p_first = math.exp(-lam * (w + c))
        p_retry = math.exp(-lam * (r + w + c))
        expected = (1 - p_first) / p_retry
        assert expected_number_of_failures(w, c, r, lam) == pytest.approx(expected)

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            expected_number_of_failures(-1.0, 0.0, 0.0, 0.1)
