"""Unit tests for :mod:`repro.core.dag`."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import CycleError, Task, Workflow, WorkflowStructure
from repro.workflows import generators


def build(weights, edges, **kwargs):
    tasks = [Task(index=i, weight=float(w)) for i, w in enumerate(weights)]
    return Workflow(tasks, edges, **kwargs)


class TestConstruction:
    def test_basic_counts(self):
        wf = build([1, 2, 3], [(0, 1), (1, 2)])
        assert wf.n_tasks == 3
        assert wf.n_edges == 2
        assert len(wf) == 3

    def test_duplicate_edges_collapsed(self):
        wf = build([1, 2], [(0, 1), (0, 1)])
        assert wf.n_edges == 1

    def test_task_order_must_match_indices(self):
        tasks = [Task(index=1, weight=1.0), Task(index=0, weight=1.0)]
        with pytest.raises(ValueError):
            Workflow(tasks, [])

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build([1, 2], [(0, 5)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            build([1, 2], [(1, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            build([1, 2, 3], [(0, 1), (1, 2), (2, 0)])

    def test_non_task_rejected(self):
        with pytest.raises(TypeError):
            Workflow(["not a task"], [])  # type: ignore[list-item]

    def test_empty_workflow_allowed(self):
        wf = Workflow([], [])
        assert wf.n_tasks == 0
        assert wf.structure() is WorkflowStructure.EMPTY


class TestAdjacency:
    @pytest.fixture
    def wf(self):
        #      0
        #     / \
        #    1   2
        #     \ / \
        #      3   4
        return build([5, 1, 2, 3, 4], [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)])

    def test_successors(self, wf):
        assert wf.successors(0) == (1, 2)
        assert wf.successors(2) == (3, 4)
        assert wf.successors(4) == ()

    def test_predecessors(self, wf):
        assert wf.predecessors(3) == (1, 2)
        assert wf.predecessors(0) == ()

    def test_sources_and_sinks(self, wf):
        assert wf.sources == (0,)
        assert wf.sinks == (3, 4)

    def test_degrees(self, wf):
        assert wf.in_degree(3) == 2
        assert wf.out_degree(2) == 2

    def test_has_edge(self, wf):
        assert wf.has_edge(0, 1)
        assert not wf.has_edge(1, 0)
        assert not wf.has_edge(0, 3)

    def test_ancestors(self, wf):
        assert wf.ancestors(3) == frozenset({0, 1, 2})
        assert wf.ancestors(0) == frozenset()

    def test_descendants(self, wf):
        assert wf.descendants(0) == frozenset({1, 2, 3, 4})
        assert wf.descendants(4) == frozenset()

    def test_index_errors(self, wf):
        with pytest.raises(IndexError):
            wf.successors(99)
        with pytest.raises(TypeError):
            wf.predecessors("0")  # type: ignore[arg-type]


class TestTopology:
    def test_topological_order_is_valid(self):
        wf = generators.layered_workflow(4, 3, seed=7)
        order = wf.topological_order()
        assert wf.is_linearization(order)

    def test_is_linearization_rejects_bad_orders(self):
        wf = build([1, 2, 3], [(0, 1), (1, 2)])
        assert wf.is_linearization((0, 1, 2))
        assert not wf.is_linearization((1, 0, 2))
        assert not wf.is_linearization((0, 1))
        assert not wf.is_linearization((0, 1, 1))

    def test_critical_path_chain(self):
        wf = build([1, 2, 3], [(0, 1), (1, 2)])
        assert wf.critical_path_length() == pytest.approx(6.0)

    def test_critical_path_parallel(self):
        wf = build([1, 10, 2, 1], [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert wf.critical_path_length() == pytest.approx(12.0)


class TestWeights:
    def test_total_weight(self):
        wf = build([1.5, 2.5, 6.0], [(0, 1)])
        assert wf.total_weight == pytest.approx(10.0)

    def test_outweight_sums_direct_successors(self):
        wf = build([1, 2, 3, 4], [(0, 1), (0, 2), (1, 3)])
        assert wf.outweight(0) == pytest.approx(2 + 3)
        assert wf.outweight(1) == pytest.approx(4)
        assert wf.outweight(3) == pytest.approx(0)

    def test_descendant_weight(self):
        wf = build([1, 2, 3, 4], [(0, 1), (1, 2), (1, 3)])
        assert wf.descendant_weight(0) == pytest.approx(2 + 3 + 4)
        assert wf.descendant_weight(2) == pytest.approx(0)


class TestStructureClassification:
    def test_single(self):
        assert generators.single_task_workflow().structure() is WorkflowStructure.SINGLE

    def test_chain(self):
        wf = generators.chain_workflow(5, seed=0)
        assert wf.is_chain()
        assert wf.structure() is WorkflowStructure.CHAIN

    def test_fork(self):
        wf = generators.fork_workflow(4, seed=0)
        assert wf.is_fork()
        assert not wf.is_join()
        assert wf.structure() is WorkflowStructure.FORK

    def test_join(self):
        wf = generators.join_workflow(4, seed=0)
        assert wf.is_join()
        assert not wf.is_fork()
        assert wf.structure() is WorkflowStructure.JOIN

    def test_general(self):
        wf = generators.diamond_workflow(seed=0)
        assert wf.structure() is WorkflowStructure.GENERAL

    def test_two_task_chain_is_chain(self):
        wf = build([1, 2], [(0, 1)])
        assert wf.structure() is WorkflowStructure.CHAIN


class TestDerivation:
    def test_with_checkpoint_costs_proportional(self):
        wf = build([10, 20], [(0, 1)]).with_checkpoint_costs(mode="proportional", factor=0.1)
        assert wf.task(0).checkpoint_cost == pytest.approx(1.0)
        assert wf.task(1).checkpoint_cost == pytest.approx(2.0)
        assert wf.task(1).recovery_cost == pytest.approx(2.0)

    def test_with_checkpoint_costs_constant(self):
        wf = build([10, 20], [(0, 1)]).with_checkpoint_costs(mode="constant", value=5.0)
        assert wf.task(0).checkpoint_cost == pytest.approx(5.0)
        assert wf.task(1).checkpoint_cost == pytest.approx(5.0)

    def test_with_checkpoint_costs_zero_recovery(self):
        wf = build([10], []).with_checkpoint_costs(mode="constant", value=5.0, recovery="zero")
        assert wf.task(0).recovery_cost == 0.0

    def test_with_checkpoint_costs_rejects_unknown_mode(self):
        wf = build([10], [])
        with pytest.raises(ValueError):
            wf.with_checkpoint_costs(mode="weird")
        with pytest.raises(ValueError):
            wf.with_checkpoint_costs(recovery="sometimes")

    def test_original_workflow_untouched(self):
        wf = build([10], [])
        wf.with_checkpoint_costs(mode="constant", value=3.0)
        assert wf.task(0).checkpoint_cost == 0.0

    def test_replace_tasks_length_checked(self):
        wf = build([10, 20], [(0, 1)])
        with pytest.raises(ValueError):
            wf.replace_tasks([Task(index=0, weight=1.0)])

    def test_map_tasks_must_preserve_indices(self):
        wf = build([10, 20], [(0, 1)])
        with pytest.raises(ValueError):
            wf.map_tasks(lambda t: t.with_index(t.index + 1))


class TestNetworkxInterop:
    def test_round_trip(self):
        wf = generators.layered_workflow(3, 3, seed=11).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        graph = wf.to_networkx()
        back = Workflow.from_networkx(graph)
        assert back.n_tasks == wf.n_tasks
        assert back.n_edges == wf.n_edges
        assert back.total_weight == pytest.approx(wf.total_weight)

    def test_from_networkx_rejects_cycles(self):
        graph = nx.DiGraph([(0, 1), (1, 0)])
        with pytest.raises(CycleError):
            Workflow.from_networkx(graph)

    def test_from_networkx_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            Workflow.from_networkx(nx.Graph())

    def test_from_networkx_uses_attributes(self):
        graph = nx.DiGraph()
        graph.add_node("a", weight=4.0, checkpoint_cost=0.4)
        graph.add_node("b", weight=6.0)
        graph.add_edge("a", "b")
        wf = Workflow.from_networkx(graph)
        assert wf.total_weight == pytest.approx(10.0)
        assert wf.n_edges == 1


class TestEquality:
    def test_equal_workflows(self):
        a = build([1, 2], [(0, 1)])
        b = build([1, 2], [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_edges_not_equal(self):
        a = build([1, 2], [(0, 1)])
        b = build([1, 2], [])
        assert a != b

    def test_not_equal_to_other_types(self):
        assert build([1], []) != "workflow"
