"""Tests for the named-heuristic registry and end-to-end solver."""

from __future__ import annotations

import pytest

from repro import HEURISTIC_NAMES, Platform, evaluate_schedule, solve_all_heuristics, solve_heuristic
from repro.heuristics import best_heuristic, parse_heuristic_name
from repro.workflows import pegasus


@pytest.fixture(scope="module")
def workflow():
    return pegasus.cybershake(30, seed=11).with_checkpoint_costs(mode="proportional", factor=0.1)


@pytest.fixture(scope="module")
def platform():
    return Platform.from_platform_rate(1e-3)


class TestNames:
    def test_fourteen_heuristics(self):
        assert len(HEURISTIC_NAMES) == 14
        assert len(set(HEURISTIC_NAMES)) == 14

    def test_baselines_only_with_df(self):
        assert "DF-CkptNvr" in HEURISTIC_NAMES
        assert "DF-CkptAlws" in HEURISTIC_NAMES
        assert "BF-CkptNvr" not in HEURISTIC_NAMES
        assert "RF-CkptAlws" not in HEURISTIC_NAMES

    def test_all_parameterised_combinations_present(self):
        for linearization in ("DF", "BF", "RF"):
            for strategy in ("CkptW", "CkptC", "CkptD", "CkptPer"):
                assert f"{linearization}-{strategy}" in HEURISTIC_NAMES

    def test_parse_valid(self):
        assert parse_heuristic_name("BF-CkptPer") == ("BF", "CkptPer")

    @pytest.mark.parametrize("bad", ["DFCkptW", "XX-CkptW", "DF-CkptX", "", "DF-"])
    def test_parse_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_heuristic_name(bad)


class TestSolveHeuristic:
    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_every_heuristic_produces_a_valid_schedule(self, workflow, platform, name):
        result = solve_heuristic(workflow, platform, name, rng=0, counts=[1, 5, 10, 20])
        schedule = result.schedule
        assert workflow.is_linearization(schedule.order)
        assert all(0 <= i < workflow.n_tasks for i in schedule.checkpointed)
        assert result.expected_makespan > 0
        assert result.overhead_ratio >= 1.0
        # The reported evaluation corresponds to the reported schedule.
        assert result.expected_makespan == pytest.approx(
            evaluate_schedule(schedule, platform).expected_makespan
        )

    def test_baselines(self, workflow, platform):
        never = solve_heuristic(workflow, platform, "DF-CkptNvr")
        always = solve_heuristic(workflow, platform, "DF-CkptAlws")
        assert never.checkpoint_count == 0
        assert always.checkpoint_count == workflow.n_tasks

    def test_nonstandard_combination_accepted_for_ablation(self, workflow, platform):
        result = solve_heuristic(workflow, platform, "BF-CkptNvr")
        assert result.checkpoint_count == 0
        assert result.linearization == "BF"

    def test_search_improves_on_baselines(self, workflow, platform):
        ckptw = solve_heuristic(workflow, platform, "DF-CkptW")
        never = solve_heuristic(workflow, platform, "DF-CkptNvr")
        always = solve_heuristic(workflow, platform, "DF-CkptAlws")
        assert ckptw.expected_makespan <= never.expected_makespan + 1e-9
        assert ckptw.expected_makespan <= always.expected_makespan + 1e-9

    def test_failure_free_platform_avoids_checkpoints(self, workflow):
        result = solve_heuristic(workflow, Platform.failure_free(), "DF-CkptW")
        assert result.checkpoint_count == 0
        assert result.overhead_ratio == pytest.approx(1.0)

    def test_unknown_name_rejected(self, workflow, platform):
        with pytest.raises(ValueError):
            solve_heuristic(workflow, platform, "DF-CkptAmazing")


class TestSolveAll:
    def test_solve_all_returns_every_requested_heuristic(self, workflow, platform):
        subset = ("DF-CkptW", "DF-CkptC", "DF-CkptNvr")
        results = solve_all_heuristics(
            workflow, platform, heuristics=subset, rng=3, counts=[2, 8, 16]
        )
        assert set(results) == set(subset)

    def test_int_seed_reproducible_across_entry_points(self, workflow, platform):
        """solve_heuristic(rng=seed) must match the campaign/solve_all path."""
        single = solve_heuristic(workflow, platform, "RF-CkptW", rng=7, counts=[2, 8])
        grouped = solve_all_heuristics(
            workflow, platform, heuristics=("RF-CkptW",), rng=7, counts=[2, 8]
        )
        assert single.expected_makespan == grouped["RF-CkptW"].expected_makespan
        assert single.schedule.order == grouped["RF-CkptW"].schedule.order

    def test_best_heuristic_is_the_minimum(self, workflow, platform):
        subset = ("DF-CkptW", "DF-CkptC", "DF-CkptPer", "DF-CkptNvr")
        results = solve_all_heuristics(
            workflow, platform, heuristics=subset, rng=3, counts=[2, 8, 16]
        )
        best = best_heuristic(workflow, platform, heuristics=subset, rng=3, counts=[2, 8, 16])
        assert best.expected_makespan == pytest.approx(
            min(r.expected_makespan for r in results.values())
        )
