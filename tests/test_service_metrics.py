"""Tests for the service's Prometheus-style metrics (repro.service.metrics)."""

from __future__ import annotations

import math
import threading

import pytest

from repro.service.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_service_registry,
    format_value,
)


class TestFormatValue:
    def test_integers_render_bare(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"

    def test_floats_keep_precision(self):
        assert format_value(0.25) == "0.25"
        assert float(format_value(0.1)) == 0.1

    def test_special_values(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c_total", "help")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_decrease(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("req_total", "help", label_names=("endpoint", "status"))
        counter.inc(endpoint="/v1/solve", status="200")
        counter.inc(endpoint="/v1/solve", status="200")
        counter.inc(endpoint="/healthz", status="200")
        assert counter.value(endpoint="/v1/solve", status="200") == 2.0
        assert counter.value(endpoint="/healthz", status="200") == 1.0
        assert counter.value(endpoint="/healthz", status="500") == 0.0

    def test_wrong_label_set_rejected(self):
        counter = Counter("req_total", "help", label_names=("endpoint",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(status="200")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth", "help")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4.0

    def test_callback_gauge_reads_at_scrape_time(self):
        box = {"v": 1.0}
        gauge = Gauge("depth", "help", callback=lambda: box["v"])
        assert gauge.value() == 1.0
        box["v"] = 7.0
        assert gauge.value() == 7.0
        with pytest.raises(ValueError, match="callback"):
            gauge.set(3)

    def test_set_callback_after_construction(self):
        gauge = Gauge("depth", "help")
        gauge.set_callback(lambda: 42.0)
        assert gauge.value() == 42.0
        assert "depth 42" in "\n".join(gauge.sample_lines())


class TestHistogram:
    def test_observations_fill_cumulative_buckets(self):
        hist = Histogram("lat", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        # cumulative: <=0.1 -> 1, <=1.0 -> 3, <=10.0 -> 4, +Inf -> 5
        assert snap["cumulative"] == [1, 3, 4, 5]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_rendering_has_inf_sum_count(self):
        hist = Histogram("lat", "help", buckets=(0.1, 1.0))
        hist.observe(0.5)
        text = "\n".join(hist.header_lines() + hist.sample_lines())
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.1"} 0' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.5" in text
        assert "lat_count 1" in text

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", "help", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("lat", "help", buckets=())

    def test_quantile_interpolates(self):
        hist = Histogram("lat", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        # p50 has rank 2 -> falls in the (1.0, 2.0] bucket
        assert 1.0 <= hist.quantile(0.5) <= 2.0
        assert math.isnan(Histogram("l2", "h", buckets=(1.0,)).quantile(0.5))
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_labelled_histogram_series(self):
        hist = Histogram("lat", "help", buckets=(1.0,), label_names=("endpoint",))
        hist.observe(0.5, endpoint="/v1/solve")
        snap = hist.snapshot(endpoint="/v1/solve")
        assert snap["count"] == 1
        assert hist.snapshot(endpoint="/healthz")["count"] == 0


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("a_total", "help")

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("9starts-with-digit", "help")

    def test_render_is_valid_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "Cache hits.")
        registry.gauge("depth", "Queue depth.", callback=lambda: 3.0)
        counter.inc(2)
        text = registry.render()
        assert text.endswith("\n")
        assert "# HELP hits_total Cache hits." in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 2" in text
        assert "depth 3" in text
        # every non-comment line is "name{labels} value"
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value.replace("+Inf", "inf"))

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total", "help")
        hist = registry.histogram("lat", "help", buckets=(1.0,))

        def worker():
            for _ in range(500):
                counter.inc()
                hist.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8 * 500
        assert hist.snapshot()["count"] == 8 * 500


class TestServiceRegistry:
    """build_service_registry declares the daemon's metric contract."""

    EXPECTED = {
        "repro_requests_total",
        "repro_solve_requests_total",
        "repro_solve_cache_hits_total",
        "repro_solve_computed_total",
        "repro_solve_coalesced_total",
        "repro_solve_sweep_passes_total",
        "repro_solve_evaluations_total",
        "repro_solve_batches_total",
        "repro_solve_errors_total",
        "repro_pool_crashes_total",
        "repro_solve_retries_total",
        "repro_solve_timeouts_total",
        "repro_queue_depth",
        "repro_cache_hit_rate",
        "repro_solve_latency_seconds",
        "repro_request_latency_seconds",
    }

    def test_declares_all_service_metrics(self):
        registry = build_service_registry()
        assert set(registry.names()) == self.EXPECTED

    def test_renders_without_callbacks(self):
        text = build_service_registry().render()
        assert "repro_queue_depth 0" in text
        assert 'repro_solve_latency_seconds_bucket{le="+Inf"} 0' in text

    def test_callbacks_feed_the_gauges(self):
        registry = build_service_registry(
            queue_depth=lambda: 4.0, cache_hit_rate=lambda: 0.25
        )
        assert registry.get("repro_queue_depth").value() == 4.0
        assert "repro_cache_hit_rate 0.25" in registry.render()

    def test_default_buckets_cover_sub_millisecond_to_ten_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0

    def test_content_type_is_prometheus_text(self):
        assert MetricsRegistry.CONTENT_TYPE.startswith("text/plain; version=0.0.4")
