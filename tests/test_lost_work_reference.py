"""Cross-validation of the fast lost-work computation against Algorithm 1.

The production implementation (:func:`repro.core.lost_work.compute_lost_work`)
replaces the paper's ``tab_k`` matrix bookkeeping with a per-``k`` visited set.
This module contains a literal, line-by-line transcription of Algorithm 1
(``FindWikRik`` / ``Traverse``) from the paper and checks that both produce
identical :math:`W^i_k` / :math:`R^i_k` arrays on a variety of randomized
workflows and schedules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Schedule, compute_lost_work
from repro.heuristics import linearize
from repro.workflows import generators, pegasus


def algorithm1_reference(schedule: Schedule, k: int) -> tuple[list[float], list[float]]:
    """Literal transcription of Algorithm 1 (1-based positions).

    Returns the ``W_k`` and ``R_k`` arrays (index ``i`` = position, entry 0 unused).
    """
    workflow = schedule.workflow
    order = schedule.order
    n = len(order)
    position = {task: pos + 1 for pos, task in enumerate(order)}

    def pred_positions(pos: int) -> list[int]:
        return [position[p] for p in workflow.predecessors(order[pos - 1])]

    def weight(pos: int) -> float:
        return workflow.task(order[pos - 1]).weight

    def recovery(pos: int) -> float:
        return workflow.task(order[pos - 1]).recovery_cost

    def is_ckpt(pos: int) -> bool:
        return schedule.is_checkpointed(order[pos - 1])

    # tab_k is an (n+1) x (n+1) matrix initialised with -1 (index 0 unused).
    tab = [[-1] * (n + 1) for _ in range(n + 1)]
    W = [0.0] * (n + 1)
    R = [0.0] * (n + 1)

    def traverse(l: int, i: int) -> None:
        for j in pred_positions(l):
            state = tab[i][j]
            if state == 0:
                continue  # exists i' < i with T_j in T-down-k-i'
            if state in (1, 2):
                continue  # already studied for this i
            # state == -1: not yet studied
            for r in range(i + 1, n + 1):
                tab[r][j] = 0
            if j < k:
                if is_ckpt(j):
                    tab[i][j] = 2
                else:
                    tab[i][j] = 1
                    traverse(j, i)
            else:
                tab[i][j] = 0

    for i in range(k, n + 1):
        traverse(i, i)
        for j in range(1, k):
            if tab[i][j] == 1:
                W[i] += weight(j)
            elif tab[i][j] == 2:
                R[i] += recovery(j)
    return W, R


def assert_matches_reference(schedule: Schedule) -> None:
    lw = compute_lost_work(schedule)
    n = schedule.n_tasks
    for k in range(1, n + 1):
        ref_w, ref_r = algorithm1_reference(schedule, k)
        for i in range(k, n + 1):
            assert lw.w(k, i) == pytest.approx(ref_w[i]), (k, i)
            assert lw.r(k, i) == pytest.approx(ref_r[i]), (k, i)


class TestAgainstAlgorithm1:
    def test_paper_example(self, paper_example_schedule):
        assert_matches_reference(paper_example_schedule)

    def test_chain_with_scattered_checkpoints(self):
        wf = generators.chain_workflow(8, seed=1).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        assert_matches_reference(Schedule(wf, range(8), {1, 4, 6}))

    def test_fork_and_join(self):
        fork = generators.fork_workflow(5, seed=2).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        assert_matches_reference(Schedule(fork, fork.topological_order(), {0}))
        join = generators.join_workflow(5, seed=3).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        assert_matches_reference(Schedule(join, join.topological_order(), {1, 2}))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_layered_workflows(self, seed):
        rng = np.random.default_rng(seed)
        wf = generators.layered_workflow(
            int(rng.integers(2, 5)), int(rng.integers(2, 5)), density=0.6, seed=seed
        ).with_checkpoint_costs(mode="proportional", factor=0.1)
        n = wf.n_tasks
        order = linearize(wf, "RF", rng=rng)
        checkpointed = {int(i) for i in rng.choice(n, size=n // 3, replace=False)} if n >= 3 else set()
        assert_matches_reference(Schedule(wf, order, checkpointed))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_erdos_renyi_dags(self, seed):
        rng = np.random.default_rng(100 + seed)
        wf = generators.random_dag_workflow(10, edge_probability=0.3, seed=seed).with_checkpoint_costs(
            mode="proportional", factor=0.2
        )
        order = linearize(wf, "DF")
        checkpointed = {int(i) for i in rng.choice(10, size=3, replace=False)}
        assert_matches_reference(Schedule(wf, order, checkpointed))

    def test_pegasus_montage_small(self):
        wf = pegasus.montage(20, seed=4).with_checkpoint_costs(mode="proportional", factor=0.1)
        order = linearize(wf, "BF")
        checkpointed = set(range(0, wf.n_tasks, 3))
        assert_matches_reference(Schedule(wf, order, checkpointed))
