"""Unit tests for the pluggable backend registry (:mod:`repro.core.backend`).

These cover the registry mechanics themselves — registration, capability-
aware resolution, environment overrides, availability errors, and the
``BackendSpec`` coercion contract — independently of any numerical
equivalence (which :mod:`tests.test_backend_equivalence` and
:mod:`tests.test_native_backend` pin).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.backend import (
    AUTO_NUMPY_MIN_TASKS,
    BACKEND_ENV_VAR,
    BACKEND_REGISTRY,
    Backend,
    BackendRegistry,
    BackendSpec,
    EVAL_BACKENDS,
    resolve_backend,
)


@pytest.fixture(autouse=True)
def _no_ambient_backend_env(monkeypatch):
    # Resolution semantics are under test here: an inherited
    # REPRO_EVAL_BACKEND (e.g. the CI job forcing native) must not leak in.
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)


def _registry_with(*backends: Backend) -> BackendRegistry:
    registry = BackendRegistry()
    # Never scan entry points in unit tests: the registry under test should
    # contain exactly what the test registered.
    registry._entry_points_loaded = True
    for backend in backends:
        registry.register(backend)
    return registry


def _backend(
    name: str,
    *,
    priority: int = 0,
    min_auto_tasks: int = 0,
    capabilities=("evaluate",),
    available=None,
    unavailable_reason=None,
) -> Backend:
    return Backend(
        name,
        capabilities=capabilities,
        priority=priority,
        min_auto_tasks=min_auto_tasks,
        available=available,
        unavailable_reason=unavailable_reason,
        evaluate=lambda *a, **k: name,  # sentinel, never a real evaluation
    )


class TestRegistration:
    def test_register_and_get(self):
        registry = _registry_with(_backend("one"))
        assert registry.get("one").name == "one"

    def test_duplicate_name_rejected(self):
        registry = _registry_with(_backend("one"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_backend("one"))

    def test_replace_overrides(self):
        registry = _registry_with(_backend("one", priority=1))
        registry.register(_backend("one", priority=9), replace=True)
        assert registry.get("one").priority == 9

    def test_auto_is_reserved(self):
        registry = _registry_with()
        with pytest.raises(ValueError, match="reserved"):
            registry.register(_backend("auto"))

    def test_unregister(self):
        registry = _registry_with(_backend("one"))
        registry.unregister("one")
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            registry.get("one")

    def test_names_in_auto_preference_order(self):
        registry = _registry_with(
            _backend("slow", priority=0),
            _backend("fast", priority=20),
            _backend("mid", priority=10),
        )
        assert registry.names() == ("slow", "mid", "fast")
        assert registry.choices() == ("auto", "slow", "mid", "fast")


class TestResolution:
    def test_unknown_name_lists_choices(self):
        registry = _registry_with(_backend("one"))
        with pytest.raises(ValueError, match="unknown evaluation backend 'nope'"):
            registry.resolve("nope")

    def test_named_unavailable_raises_with_reason(self):
        registry = _registry_with(
            _backend("one"),
            _backend(
                "broken",
                available=lambda: False,
                unavailable_reason=lambda: "no toolchain on this box",
            ),
        )
        with pytest.raises(ValueError, match="no toolchain on this box"):
            registry.resolve("broken")

    def test_auto_prefers_highest_priority_available(self):
        registry = _registry_with(
            _backend("slow", priority=0),
            _backend("fast", priority=20),
        )
        assert registry.resolve(None).name == "fast"
        assert registry.resolve("auto").name == "fast"

    def test_auto_skips_unavailable(self):
        registry = _registry_with(
            _backend("slow", priority=0),
            _backend("fast", priority=20, available=lambda: False),
        )
        assert registry.resolve(None).name == "slow"

    def test_auto_honours_min_auto_tasks(self):
        registry = _registry_with(
            _backend("slow", priority=0),
            _backend("fast", priority=20, min_auto_tasks=32),
        )
        assert registry.resolve(None, n_tasks=8).name == "slow"
        assert registry.resolve(None, n_tasks=32).name == "fast"
        # Unknown size means "assume large": validation before any
        # instance exists should accept the fast path.
        assert registry.resolve(None, n_tasks=None).name == "fast"

    def test_named_backend_ignores_min_auto_tasks(self):
        registry = _registry_with(
            _backend("slow", priority=0),
            _backend("fast", priority=20, min_auto_tasks=32),
        )
        assert registry.resolve("fast", n_tasks=2).name == "fast"

    def test_named_without_capability_falls_back_to_capable(self):
        registry = _registry_with(
            _backend("sim", priority=0, capabilities=("evaluate", "monte_carlo")),
            _backend("kernel", priority=20, capabilities=("evaluate",)),
        )
        # The kernel backend has no simulation path, so a Monte-Carlo call
        # naming it degrades to the best capable backend instead of erroring.
        assert registry.resolve("kernel", require="monte_carlo").name == "sim"
        assert registry.resolve("kernel", require="evaluate").name == "kernel"

    def test_no_capable_backend_raises(self):
        registry = _registry_with(_backend("one", capabilities=("evaluate",)))
        with pytest.raises(ValueError, match="implements 'monte_carlo'"):
            registry.resolve(None, require="monte_carlo")

    def test_env_override_applies_to_auto(self, monkeypatch):
        registry = _registry_with(
            _backend("slow", priority=0),
            _backend("fast", priority=20),
        )
        monkeypatch.setenv(BACKEND_ENV_VAR, "slow")
        assert registry.resolve(None).name == "slow"
        assert registry.resolve("auto").name == "slow"
        # An explicit argument still wins over the environment.
        assert registry.resolve("fast").name == "fast"

    def test_env_auto_means_auto(self, monkeypatch):
        registry = _registry_with(
            _backend("slow", priority=0),
            _backend("fast", priority=20),
        )
        monkeypatch.setenv(BACKEND_ENV_VAR, "AUTO")
        assert registry.resolve(None).name == "fast"

    def test_spec_resolves_like_its_name(self):
        registry = _registry_with(_backend("one"))
        assert registry.resolve(BackendSpec(backend="one")).name == "one"
        assert registry.resolve(BackendSpec()).name == "one"

    def test_describe_rows(self):
        registry = _registry_with(
            _backend("ok", priority=5, min_auto_tasks=4),
            _backend(
                "broken",
                available=lambda: False,
                unavailable_reason=lambda: "why not",
            ),
        )
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["ok"]["available"] is True
        assert rows["ok"]["priority"] == 5
        assert rows["ok"]["min_auto_tasks"] == 4
        assert rows["ok"]["capabilities"] == ["evaluate"]
        assert "unavailable_reason" not in rows["ok"]
        assert rows["broken"]["available"] is False
        assert rows["broken"]["unavailable_reason"] == "why not"


class TestBackendSpec:
    def test_coerce_none(self):
        spec = BackendSpec.coerce(None)
        assert spec.backend is None and spec.evaluator is None

    def test_coerce_name(self):
        assert BackendSpec.coerce("numpy").backend == "numpy"

    def test_coerce_spec_is_identity(self):
        spec = BackendSpec(backend="numpy", evaluator=len)
        assert BackendSpec.coerce(spec) is spec

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError, match="BackendSpec"):
            BackendSpec.coerce(42)

    def test_frozen(self):
        spec = BackendSpec(backend="numpy")
        with pytest.raises(AttributeError):
            spec.backend = "python"


class TestGlobalRegistry:
    def test_builtins_present(self):
        names = BACKEND_REGISTRY.names()
        assert ("python", "numpy", "native") == names[:3] or set(
            ("python", "numpy", "native")
        ) <= set(names)

    def test_builtin_priorities_order_auto(self):
        python = BACKEND_REGISTRY.get("python")
        numpy_ = BACKEND_REGISTRY.get("numpy")
        native = BACKEND_REGISTRY.get("native")
        assert python.priority < numpy_.priority < native.priority
        assert python.min_auto_tasks == 0
        assert numpy_.min_auto_tasks == AUTO_NUMPY_MIN_TASKS
        assert native.min_auto_tasks == AUTO_NUMPY_MIN_TASKS

    def test_native_lacks_monte_carlo(self):
        native = BACKEND_REGISTRY.get("native")
        assert "monte_carlo" not in native.capabilities
        assert {"evaluate", "batch_evaluate", "sweep"} <= native.capabilities

    def test_deprecated_shims(self):
        assert EVAL_BACKENDS == ("auto", "python", "numpy", "native")
        assert resolve_backend("python") == "python"
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            resolve_backend("fortran")


class TestNativeFallbackWithoutToolchain:
    """With the native build disabled, ``auto`` must degrade silently while
    an explicit ``backend="native"`` must raise a clear error.

    Run in a subprocess so the parent's memoized probe (and any compiled
    kernels) are untouched.
    """

    _SCRIPT = r"""
import json
from repro.core.backend import BACKEND_REGISTRY
from repro.core.evaluator_native import native_available, native_unavailable_reason
from repro import Platform, Schedule, Task, Workflow, evaluate_schedule

wf = Workflow([Task(index=i, weight=5.0) for i in range(40)],
              [(i, i + 1) for i in range(39)]).with_checkpoint_costs(
    mode="proportional", factor=0.1)
sched = Schedule(wf, range(40), {9, 19, 29})
plat = Platform(processors=1, processor_failure_rate=1e-3, downtime=1.0)

out = {
    "available": native_available(),
    "reason": native_unavailable_reason(),
    "auto": BACKEND_REGISTRY.resolve(None, n_tasks=40).name,
    "auto_value": evaluate_schedule(sched, plat, backend="auto").expected_makespan,
}
try:
    evaluate_schedule(sched, plat, backend="native")
    out["explicit_error"] = None
except ValueError as exc:
    out["explicit_error"] = str(exc)
print(json.dumps(out))
"""

    def _run_disabled(self):
        env = {
            **os.environ,
            "PYTHONPATH": "src",
            "REPRO_NATIVE_DISABLE": "1",
        }
        env.pop(BACKEND_ENV_VAR, None)  # the fallback under test is "auto"
        proc = subprocess.run(
            [sys.executable, "-c", self._SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=Path(__file__).resolve().parent.parent,
            check=True,
        )
        return json.loads(proc.stdout)

    def test_auto_falls_back_and_explicit_raises(self):
        out = self._run_disabled()
        assert out["available"] is False
        assert "REPRO_NATIVE_DISABLE" in out["reason"]
        assert out["auto"] in ("numpy", "python")  # silently degraded
        assert out["auto_value"] > 0.0
        assert out["explicit_error"] is not None
        assert "native" in out["explicit_error"]
        assert "not available" in out["explicit_error"]

    def test_invalidate_probe_cache_sees_env_change(self, monkeypatch):
        from repro.core import evaluator_native

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        evaluator_native.invalidate_probe_cache()
        try:
            assert evaluator_native.native_available() is False
            reason = evaluator_native.native_unavailable_reason()
            assert reason is not None and "REPRO_NATIVE_DISABLE" in reason
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            evaluator_native.invalidate_probe_cache()
