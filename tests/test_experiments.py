"""Tests for the experiment harness (scenarios, runs, reporting, figures)."""

from __future__ import annotations

import csv
import io

import pytest

from repro.experiments import (
    DEFAULT_FAILURE_RATES,
    LAMBDA_DOWNTIME_DOWNTIMES,
    LAMBDA_DOWNTIME_RATES,
    Scenario,
    best_by_strategy,
    build_workflow,
    figure2,
    figure7,
    format_ratio_table,
    lambda_downtime_grid,
    parse_shard,
    ratio_table,
    rows_from_csv,
    rows_to_csv,
    rows_to_markdown,
    run_heuristic,
    run_scenario,
    save_rows_csv,
    scenario_grid,
    series_by_heuristic,
    shard_scenarios,
)
from repro.heuristics import HEURISTIC_NAMES


SMALL_HEURISTICS = ("DF-CkptNvr", "DF-CkptAlws", "DF-CkptW", "DF-CkptC")


@pytest.fixture(scope="module")
def rows():
    scenario = Scenario(
        family="cybershake",
        n_tasks=25,
        failure_rate=1e-3,
        heuristics=SMALL_HEURISTICS,
        seed=3,
        label="unit",
    )
    return run_scenario(scenario, search_mode="geometric", max_candidates=8)


class TestScenario:
    def test_platform_matches_rate(self):
        scenario = Scenario(family="ligo", n_tasks=50, failure_rate=2e-4)
        assert scenario.platform.failure_rate == pytest.approx(2e-4)
        assert scenario.platform.downtime == 0.0

    def test_platform_carries_downtime(self):
        """Regression: Scenario.platform used to hard-code downtime=0."""
        scenario = Scenario(family="ligo", n_tasks=50, failure_rate=2e-4, downtime=60.0)
        assert scenario.platform.downtime == 60.0
        assert scenario.platform_spec.downtime == 60.0

    def test_platform_carries_processors(self):
        scenario = Scenario(family="ligo", n_tasks=50, failure_rate=1e-4, processors=8)
        assert scenario.platform.processors == 8
        assert scenario.platform.failure_rate == pytest.approx(8e-4)

    def test_downtime_changes_the_evaluated_makespan(self):
        """The end-to-end bug: a D > 0 scenario must not price like D = 0."""
        base = Scenario(
            family="montage", n_tasks=20, failure_rate=5e-3, seed=1,
            heuristics=("DF-CkptW",),
        )
        with_downtime = base.with_updates(downtime=120.0)
        row_zero = run_heuristic(base, "DF-CkptW", search_mode="geometric",
                                 max_candidates=5)
        row_down = run_heuristic(with_downtime, "DF-CkptW", search_mode="geometric",
                                 max_candidates=5)
        assert row_down.expected_makespan > row_zero.expected_makespan
        assert row_down.downtime == 120.0 and row_zero.downtime == 0.0

    def test_describe(self):
        scenario = Scenario(family="montage", n_tasks=50, failure_rate=1e-3)
        text = scenario.describe()
        assert "montage" in text and "n=50" in text
        assert "D=" not in text and "p=" not in text  # paper defaults stay terse
        constant = scenario.with_updates(checkpoint_mode="constant", checkpoint_value=5.0)
        assert "c=5" in constant.describe()

    def test_describe_labels_platform_axes(self):
        """Distinct platform grid points must never share a label."""
        base = Scenario(family="montage", n_tasks=50, failure_rate=1e-3)
        down = base.with_updates(downtime=60.0)
        procs = base.with_updates(processors=8)
        assert "D=60" in down.describe()
        assert "p=8" in procs.describe()
        labels = {base.describe(), down.describe(), procs.describe(),
                  base.with_updates(downtime=60.0, processors=8).describe()}
        assert len(labels) == 4

    def test_build_workflow_assigns_costs(self):
        scenario = Scenario(
            family="montage", n_tasks=40, failure_rate=1e-3, checkpoint_factor=0.1, seed=1
        )
        wf = build_workflow(scenario)
        assert all(
            t.checkpoint_cost == pytest.approx(0.1 * t.weight) for t in wf.tasks
        )
        assert all(t.recovery_cost == pytest.approx(t.checkpoint_cost) for t in wf.tasks)

    def test_scenario_grid(self):
        scenarios = scenario_grid(("montage", "genome"), (50, 100), label="x")
        assert len(scenarios) == 4
        rates = {s.family: s.failure_rate for s in scenarios}
        assert rates["montage"] == DEFAULT_FAILURE_RATES["montage"]
        assert rates["genome"] == DEFAULT_FAILURE_RATES["genome"]

    def test_scenario_grid_unknown_family(self):
        with pytest.raises(ValueError):
            scenario_grid(("unknown",), (50,))

    def test_scenario_grid_platform_axes(self):
        scenarios = scenario_grid(
            ("montage",), (30,), downtimes=(0.0, 60.0), processors=(1, 8)
        )
        assert len(scenarios) == 4
        points = {(s.downtime, s.processors) for s in scenarios}
        assert points == {(0.0, 1), (0.0, 8), (60.0, 1), (60.0, 8)}
        # Deterministic order: downtime is the outer platform axis.
        assert [(s.downtime, s.processors) for s in scenarios] == [
            (0.0, 1), (0.0, 8), (60.0, 1), (60.0, 8),
        ]

    def test_scenario_grid_rejects_empty_platform_axes(self):
        with pytest.raises(ValueError):
            scenario_grid(("montage",), (30,), downtimes=())
        with pytest.raises(ValueError):
            scenario_grid(("montage",), (30,), processors=())


class TestSharding:
    def _grid(self):
        return scenario_grid(
            ("montage", "genome"), (30, 60), downtimes=(0.0, 30.0), processors=(1, 4)
        )

    def test_parse_shard(self):
        assert parse_shard("1/2") == (1, 2)
        assert parse_shard(" 3/4 ") == (3, 4)
        for bad in ("", "1", "0/2", "3/2", "a/b", "1/2/3", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_grid(self):
        grid = self._grid()
        shards = [shard_scenarios(grid, k, 3) for k in (1, 2, 3)]
        merged = [s for shard in shards for s in shard]
        assert sorted(merged, key=grid.index) == grid
        assert sum(len(s) for s in shards) == len(grid)
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_sharding_is_deterministic(self):
        first = scenario_grid(("montage",), (30, 60), downtimes=(0.0, 30.0), shard=(1, 2))
        again = scenario_grid(("montage",), (30, 60), downtimes=(0.0, 30.0), shard=(1, 2))
        assert first == again
        full = scenario_grid(("montage",), (30, 60), downtimes=(0.0, 30.0))
        assert first == full[0::2]

    def test_single_shard_is_the_whole_grid(self):
        grid = self._grid()
        assert shard_scenarios(grid, 1, 1) == grid

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(ValueError):
            shard_scenarios(self._grid(), 3, 2)


class TestLambdaDowntimePreset:
    def test_grid_shape_and_order(self):
        scenarios = lambda_downtime_grid(("montage",), n_tasks=40)
        expected = len(LAMBDA_DOWNTIME_RATES) * len(LAMBDA_DOWNTIME_DOWNTIMES)
        assert len(scenarios) == expected
        assert all(s.n_tasks == 40 for s in scenarios)
        assert all(s.label == "lambda-x-downtime" for s in scenarios)
        points = {(s.failure_rate, s.downtime) for s in scenarios}
        assert len(points) == expected

    def test_custom_axes_and_processors(self):
        scenarios = lambda_downtime_grid(
            ("montage",), n_tasks=20, rates=(1e-3,), downtimes=(0.0, 5.0),
            processors=(1, 2),
        )
        assert len(scenarios) == 4
        assert {s.processors for s in scenarios} == {1, 2}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            lambda_downtime_grid(("bogus",))


class TestRunScenario:
    def test_one_row_per_heuristic(self, rows):
        assert len(rows) == len(SMALL_HEURISTICS)
        assert {r.heuristic for r in rows} == set(SMALL_HEURISTICS)

    def test_rows_have_consistent_ratios(self, rows):
        for row in rows:
            assert row.overhead_ratio == pytest.approx(
                row.expected_makespan / row.failure_free_work
            )
            assert row.overhead_ratio >= 1.0
            assert row.solve_seconds >= 0.0

    def test_invalid_search_mode_rejected_even_for_baselines(self):
        # CkptNvr never consumes the candidate counts, but a typoed mode
        # must still fail loudly instead of polluting results/cache keys.
        scenario = Scenario(
            family="montage", n_tasks=15, failure_rate=1e-3,
            heuristics=("DF-CkptNvr",),
        )
        with pytest.raises(ValueError, match="search mode"):
            run_scenario(scenario, search_mode="bogus")

    def test_searchful_heuristics_beat_baselines(self, rows):
        by_name = {r.heuristic: r for r in rows}
        assert by_name["DF-CkptW"].overhead_ratio <= by_name["DF-CkptNvr"].overhead_ratio + 1e-9
        assert by_name["DF-CkptW"].overhead_ratio <= by_name["DF-CkptAlws"].overhead_ratio + 1e-9


class TestAggregation:
    def test_series_by_heuristic(self, rows):
        series = series_by_heuristic(rows)
        assert set(series) == set(SMALL_HEURISTICS)
        for points in series.values():
            assert all(len(point) == 2 for point in points)

    def test_series_invalid_axis(self, rows):
        with pytest.raises(ValueError):
            series_by_heuristic(rows, x_axis="seed")

    def test_best_by_strategy_keeps_minimum(self, rows):
        best = best_by_strategy(rows)
        for (family, n, strategy), row in best.items():
            assert row.checkpoint_strategy == strategy
            assert row.family == family

    def test_ratio_table(self, rows):
        table = ratio_table(rows)
        assert len(table) == 1
        ((key, values),) = table.items()
        assert set(values) == set(SMALL_HEURISTICS)


class TestReporting:
    def test_csv_round_trip(self, rows):
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["heuristic"] == rows[0].heuristic

    def test_save_csv(self, rows, tmp_path):
        path = save_rows_csv(rows, tmp_path / "rows.csv")
        assert path.exists()
        assert "heuristic" in path.read_text()

    def test_markdown(self, rows):
        text = rows_to_markdown(rows)
        assert text.startswith("| family |")
        assert text.count("\n") == len(rows) + 1

    def test_format_ratio_table_marks_best(self, rows):
        text = format_ratio_table(rows)
        assert "*" in text
        assert "cybershake" in text

    def test_csv_round_trips_through_loader(self, rows):
        parsed = rows_from_csv(rows_to_csv(rows))
        assert parsed == list(rows)

    def test_loader_rejects_foreign_csv(self):
        with pytest.raises(ValueError, match="unknown result-row column"):
            rows_from_csv("family,surprise\nmontage,1\n")
        with pytest.raises(ValueError, match="missing required column"):
            rows_from_csv("family,n_tasks\nmontage,30\n")

    def test_loader_rejects_malformed_lines(self, rows):
        text = rows_to_csv(rows)
        header, first, *_ = text.splitlines()
        with pytest.raises(ValueError, match="too many fields"):
            rows_from_csv(f"{header}\n{first},EXTRA\n")
        short = ",".join(first.split(",")[:-2])
        with pytest.raises(ValueError, match="short line"):
            rows_from_csv(f"{header}\n{short}\n")


def _platform_rows():
    """Rows spanning two downtimes and two processor counts (one scenario each)."""
    rows = []
    for downtime, procs in ((0.0, 1), (60.0, 1), (0.0, 8), (60.0, 8)):
        scenario = Scenario(
            family="montage", n_tasks=15, failure_rate=1e-3,
            downtime=downtime, processors=procs,
            heuristics=("DF-CkptW",), seed=2, label="platform",
        )
        rows.append(run_heuristic(scenario, "DF-CkptW", search_mode="geometric",
                                  max_candidates=5))
    return rows


class TestPlatformAwareReporting:
    @pytest.fixture(scope="class")
    def platform_rows(self):
        return _platform_rows()

    def test_ratio_table_keeps_platform_points_apart(self, platform_rows):
        table = ratio_table(platform_rows)
        assert len(table) == 4  # one entry per platform point, none overwritten

    def test_format_ratio_table_labels_platform_axes(self, platform_rows):
        text = format_ratio_table(platform_rows)
        header = text.splitlines()[0]
        assert "D" in header.split() and "p" in header.split()
        # All four platform points render distinct lines.
        assert len(text.splitlines()) == 2 + 4

    def test_markdown_grows_platform_columns(self, platform_rows):
        text = rows_to_markdown(platform_rows)
        assert "downtime" in text and "processors" in text
        # Column order matches every other renderer: D before p.
        header = text.splitlines()[0]
        assert header.index("downtime") < header.index("processors")
        # ... but only when the axis actually varies.
        single = rows_to_markdown(platform_rows[:1])
        assert "downtime" not in single and "processors" not in single

    def test_series_disambiguates_hidden_platform_dims(self, platform_rows):
        series = series_by_heuristic(platform_rows, x_axis="n_tasks")
        assert len(series) == 4
        assert any("D=60" in key for key in series)
        assert any("p=8" in key for key in series)

    def test_series_by_platform_axis(self, platform_rows):
        rows = [r for r in platform_rows if r.processors == 1]
        series = series_by_heuristic(rows, x_axis="downtime")
        assert set(series) == {"DF-CkptW"}
        xs = [x for x, _ in series["DF-CkptW"]]
        assert xs == [0.0, 60.0]

    def test_series_disambiguates_rate_sweeps_within_a_family(self):
        """lambda x D rows: each swept rate gets its own series, but a
        purely per-family rate (paper grids) stays implicit."""
        rows = []
        for rate in (1e-3, 2e-3):
            scenario = Scenario(
                family="montage", n_tasks=15, failure_rate=rate,
                heuristics=("DF-CkptNvr",), seed=2,
            )
            for downtime in (0.0, 60.0):
                rows.append(run_heuristic(
                    scenario.with_updates(downtime=downtime), "DF-CkptNvr",
                    search_mode="geometric", max_candidates=5,
                ))
        series = series_by_heuristic(rows, x_axis="downtime")
        assert len(series) == 2
        assert all("lambda=" in key for key in series)
        assert all(len(points) == 2 for points in series.values())
        # Per-family rates alone (montage vs genome defaults) add no tag.
        per_family = scenario_grid(("montage", "genome"), (15,),
                                   heuristics=("DF-CkptNvr",))
        family_rows = [run_heuristic(s, "DF-CkptNvr", search_mode="geometric",
                                     max_candidates=5) for s in per_family]
        assert set(series_by_heuristic(family_rows)) == {"DF-CkptNvr"}


class TestFigures:
    def test_figure2_smoke(self):
        result = figure2(sizes=(20,), seed=1, search_mode="geometric")
        assert result.figure == "figure2"
        assert set(result.panels) == {"cybershake", "ligo", "genome"}
        series = result.series("cybershake")
        assert set(series) == {
            "DF-CkptW", "BF-CkptW", "RF-CkptW", "DF-CkptC", "BF-CkptC", "RF-CkptC",
        }
        best = result.best_heuristic_per_x("cybershake")
        assert len(best) == 1

    def test_figure7_smoke(self):
        result = figure7(
            n_tasks=20,
            seed=1,
            search_mode="geometric",
            rates={"montage": (1e-4, 9e-4)},
        )
        assert result.x_axis == "failure_rate"
        series = result.series("montage")
        assert set(series) == set(HEURISTIC_NAMES)
        # The overhead grows with the failure rate for every heuristic.
        for points in series.values():
            assert points[0][1] <= points[-1][1] + 1e-6

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            figure2(preset="gigantic")
