"""Tests for the experiment harness (scenarios, runs, reporting, figures)."""

from __future__ import annotations

import csv
import io

import pytest

from repro.experiments import (
    DEFAULT_FAILURE_RATES,
    Scenario,
    best_by_strategy,
    build_workflow,
    figure2,
    figure7,
    format_ratio_table,
    ratio_table,
    rows_to_csv,
    rows_to_markdown,
    run_scenario,
    save_rows_csv,
    scenario_grid,
    series_by_heuristic,
)
from repro.heuristics import HEURISTIC_NAMES


SMALL_HEURISTICS = ("DF-CkptNvr", "DF-CkptAlws", "DF-CkptW", "DF-CkptC")


@pytest.fixture(scope="module")
def rows():
    scenario = Scenario(
        family="cybershake",
        n_tasks=25,
        failure_rate=1e-3,
        heuristics=SMALL_HEURISTICS,
        seed=3,
        label="unit",
    )
    return run_scenario(scenario, search_mode="geometric", max_candidates=8)


class TestScenario:
    def test_platform_matches_rate(self):
        scenario = Scenario(family="ligo", n_tasks=50, failure_rate=2e-4)
        assert scenario.platform.failure_rate == pytest.approx(2e-4)
        assert scenario.platform.downtime == 0.0

    def test_describe(self):
        scenario = Scenario(family="montage", n_tasks=50, failure_rate=1e-3)
        text = scenario.describe()
        assert "montage" in text and "n=50" in text
        constant = scenario.with_updates(checkpoint_mode="constant", checkpoint_value=5.0)
        assert "c=5" in constant.describe()

    def test_build_workflow_assigns_costs(self):
        scenario = Scenario(
            family="montage", n_tasks=40, failure_rate=1e-3, checkpoint_factor=0.1, seed=1
        )
        wf = build_workflow(scenario)
        assert all(
            t.checkpoint_cost == pytest.approx(0.1 * t.weight) for t in wf.tasks
        )
        assert all(t.recovery_cost == pytest.approx(t.checkpoint_cost) for t in wf.tasks)

    def test_scenario_grid(self):
        scenarios = scenario_grid(("montage", "genome"), (50, 100), label="x")
        assert len(scenarios) == 4
        rates = {s.family: s.failure_rate for s in scenarios}
        assert rates["montage"] == DEFAULT_FAILURE_RATES["montage"]
        assert rates["genome"] == DEFAULT_FAILURE_RATES["genome"]

    def test_scenario_grid_unknown_family(self):
        with pytest.raises(ValueError):
            scenario_grid(("unknown",), (50,))


class TestRunScenario:
    def test_one_row_per_heuristic(self, rows):
        assert len(rows) == len(SMALL_HEURISTICS)
        assert {r.heuristic for r in rows} == set(SMALL_HEURISTICS)

    def test_rows_have_consistent_ratios(self, rows):
        for row in rows:
            assert row.overhead_ratio == pytest.approx(
                row.expected_makespan / row.failure_free_work
            )
            assert row.overhead_ratio >= 1.0
            assert row.solve_seconds >= 0.0

    def test_invalid_search_mode_rejected_even_for_baselines(self):
        # CkptNvr never consumes the candidate counts, but a typoed mode
        # must still fail loudly instead of polluting results/cache keys.
        scenario = Scenario(
            family="montage", n_tasks=15, failure_rate=1e-3,
            heuristics=("DF-CkptNvr",),
        )
        with pytest.raises(ValueError, match="search mode"):
            run_scenario(scenario, search_mode="bogus")

    def test_searchful_heuristics_beat_baselines(self, rows):
        by_name = {r.heuristic: r for r in rows}
        assert by_name["DF-CkptW"].overhead_ratio <= by_name["DF-CkptNvr"].overhead_ratio + 1e-9
        assert by_name["DF-CkptW"].overhead_ratio <= by_name["DF-CkptAlws"].overhead_ratio + 1e-9


class TestAggregation:
    def test_series_by_heuristic(self, rows):
        series = series_by_heuristic(rows)
        assert set(series) == set(SMALL_HEURISTICS)
        for points in series.values():
            assert all(len(point) == 2 for point in points)

    def test_series_invalid_axis(self, rows):
        with pytest.raises(ValueError):
            series_by_heuristic(rows, x_axis="seed")

    def test_best_by_strategy_keeps_minimum(self, rows):
        best = best_by_strategy(rows)
        for (family, n, strategy), row in best.items():
            assert row.checkpoint_strategy == strategy
            assert row.family == family

    def test_ratio_table(self, rows):
        table = ratio_table(rows)
        assert len(table) == 1
        ((key, values),) = table.items()
        assert set(values) == set(SMALL_HEURISTICS)


class TestReporting:
    def test_csv_round_trip(self, rows):
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["heuristic"] == rows[0].heuristic

    def test_save_csv(self, rows, tmp_path):
        path = save_rows_csv(rows, tmp_path / "rows.csv")
        assert path.exists()
        assert "heuristic" in path.read_text()

    def test_markdown(self, rows):
        text = rows_to_markdown(rows)
        assert text.startswith("| family |")
        assert text.count("\n") == len(rows) + 1

    def test_format_ratio_table_marks_best(self, rows):
        text = format_ratio_table(rows)
        assert "*" in text
        assert "cybershake" in text


class TestFigures:
    def test_figure2_smoke(self):
        result = figure2(sizes=(20,), seed=1, search_mode="geometric")
        assert result.figure == "figure2"
        assert set(result.panels) == {"cybershake", "ligo", "genome"}
        series = result.series("cybershake")
        assert set(series) == {
            "DF-CkptW", "BF-CkptW", "RF-CkptW", "DF-CkptC", "BF-CkptC", "RF-CkptC",
        }
        best = result.best_heuristic_per_x("cybershake")
        assert len(best) == 1

    def test_figure7_smoke(self):
        result = figure7(
            n_tasks=20,
            seed=1,
            search_mode="geometric",
            rates={"montage": (1e-4, 9e-4)},
        )
        assert result.x_axis == "failure_rate"
        series = result.series("montage")
        assert set(series) == set(HEURISTIC_NAMES)
        # The overhead grows with the failure rate for every heuristic.
        for points in series.values():
            assert points[0][1] <= points[-1][1] + 1e-6

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            figure2(preset="gigantic")
