"""Tests for the checkpoint-count search."""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, evaluate_schedule
from repro.heuristics import (
    candidate_counts,
    checkpoint_by_weight,
    linearize,
    search_checkpoint_count,
)
from repro.workflows import generators


@pytest.fixture
def wf():
    return generators.chain_workflow(10, seed=4, mean_weight=40.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


@pytest.fixture
def platform():
    return Platform.from_platform_rate(5e-3)


class TestCandidateCounts:
    def test_exhaustive_covers_everything(self):
        assert candidate_counts(6) == (1, 2, 3, 4, 5, 6)

    def test_tiny_workflows(self):
        assert candidate_counts(1) == (0,)
        assert candidate_counts(0) == ()
        assert candidate_counts(2) == (1, 2)

    def test_geometric_respects_budget(self):
        counts = candidate_counts(500, mode="geometric", max_candidates=12)
        assert len(counts) <= 12
        assert counts[0] == 1 and counts[-1] == 500
        assert list(counts) == sorted(set(counts))

    def test_geometric_small_falls_back_to_exhaustive(self):
        assert candidate_counts(10, mode="geometric", max_candidates=30) == tuple(range(1, 11))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            candidate_counts(10, mode="fancy")


class TestSearch:
    def test_finds_the_best_count_exhaustively(self, wf, platform):
        order = linearize(wf, "DF")
        search = search_checkpoint_count(wf, order, platform, checkpoint_by_weight)
        # Recompute every candidate by hand and compare.
        best = min(
            evaluate_schedule(
                Schedule(wf, order, checkpoint_by_weight(wf, order, n)), platform
            ).expected_makespan
            for n in range(0, wf.n_tasks + 1)
        )
        assert search.best_evaluation.expected_makespan == pytest.approx(best)
        assert search.best_schedule.workflow is wf

    def test_reports_every_candidate(self, wf, platform):
        order = linearize(wf, "DF")
        search = search_checkpoint_count(wf, order, platform, checkpoint_by_weight)
        assert set(search.evaluated) == set(range(0, wf.n_tasks + 1))
        assert min(search.evaluated.values()) == pytest.approx(
            search.best_evaluation.expected_makespan
        )

    def test_subsampled_counts_are_respected(self, wf, platform):
        order = linearize(wf, "DF")
        search = search_checkpoint_count(
            wf, order, platform, checkpoint_by_weight, counts=[2, 5], include_zero=False
        )
        assert set(search.evaluated) == {2, 5}

    def test_include_zero_allows_empty_checkpoint_set(self, wf):
        order = linearize(wf, "DF")
        search = search_checkpoint_count(
            wf, order, Platform.failure_free(), checkpoint_by_weight
        )
        assert search.best_count == 0
        assert search.best_schedule.n_checkpointed == 0

    def test_invalid_count_rejected(self, wf, platform):
        order = linearize(wf, "DF")
        with pytest.raises(ValueError):
            search_checkpoint_count(
                wf, order, platform, checkpoint_by_weight, counts=[-3]
            )
        with pytest.raises(ValueError):
            search_checkpoint_count(
                wf, order, platform, checkpoint_by_weight, counts=[999]
            )

    def test_empty_counts_rejected(self, wf, platform):
        order = linearize(wf, "DF")
        with pytest.raises(ValueError):
            search_checkpoint_count(
                wf, order, platform, checkpoint_by_weight, counts=[], include_zero=False
            )

    def test_duplicate_selections_not_reevaluated(self, wf, platform):
        """CkptPer-style selectors can map several counts to the same set."""
        order = linearize(wf, "DF")

        calls = []

        def selector(workflow, order_, count):
            calls.append(count)
            return frozenset({0})  # constant selection regardless of count

        search = search_checkpoint_count(wf, order, platform, selector, counts=[1, 2, 3])
        assert len(set(search.evaluated.values())) == 2  # {0 checkpoints, {0}}
        assert len(calls) == 3


class TestIncrementalAccounting:
    """The incremental sweep prices every candidate exactly once per count.

    The ablation benchmarks compare evaluator-call counts across backends,
    so an incremental toggle must count exactly like an eager evaluation.
    """

    def test_evaluated_covers_every_count_on_both_backends(self, wf, platform):
        order = linearize(wf, "DF")
        by_backend = {
            backend: search_checkpoint_count(
                wf, order, platform, checkpoint_by_weight, backend=backend
            )
            for backend in ("python", "numpy")
        }
        python, numpy_ = by_backend["python"], by_backend["numpy"]
        # include_zero + exhaustive: one entry per count 0..n, whatever the
        # backend — the sweep never skips or double-counts a candidate.
        assert set(python.evaluated) == set(range(0, wf.n_tasks + 1))
        assert python.evaluated.keys() == numpy_.evaluated.keys()
        for count, value in python.evaluated.items():
            assert abs(value - numpy_.evaluated[count]) <= 1e-9 * max(1.0, abs(value))
        assert python.best_count == numpy_.best_count
