"""Unit tests for the expected-makespan evaluator (Theorem 3)."""

from __future__ import annotations

import itertools
import math

import pytest

from repro import (
    Platform,
    Schedule,
    Task,
    Workflow,
    compute_lost_work,
    evaluate_schedule,
    expected_execution_time,
    expected_makespan,
)
from repro.theory import chain_expected_makespan, fork_expected_makespan, join_expected_makespan
from repro.theory.join import join_schedule
from repro.workflows import generators


class TestDegenerateCases:
    def test_empty_workflow(self):
        wf = Workflow([], [])
        evaluation = evaluate_schedule(Schedule(wf, (), ()), Platform.from_platform_rate(1e-3))
        assert evaluation.expected_makespan == 0.0
        assert evaluation.overhead_ratio == 1.0

    def test_single_task_matches_equation_one(self):
        task = Task(index=0, weight=50.0, checkpoint_cost=5.0, recovery_cost=5.0)
        wf = Workflow([task], [])
        platform = Platform.from_platform_rate(1e-2, downtime=1.0)
        with_ckpt = evaluate_schedule(Schedule(wf, (0,), {0}), platform).expected_makespan
        without = evaluate_schedule(Schedule(wf, (0,), ()), platform).expected_makespan
        assert with_ckpt == pytest.approx(expected_execution_time(50.0, 5.0, 0.0, 1e-2, 1.0))
        assert without == pytest.approx(expected_execution_time(50.0, 0.0, 0.0, 1e-2, 1.0))

    def test_failure_free_platform_gives_failure_free_makespan(self, diamond):
        schedule = Schedule(diamond, (0, 1, 2, 3), {1, 2})
        evaluation = evaluate_schedule(schedule, Platform.failure_free())
        assert evaluation.expected_makespan == pytest.approx(schedule.failure_free_makespan)
        assert evaluation.expected_task_times == pytest.approx(
            (10.0, 22.0, 5.5, 8.0)
        )


class TestGeneralProperties:
    @pytest.fixture
    def schedule(self, diamond):
        return Schedule(diamond, (0, 1, 2, 3), {1})

    def test_makespan_at_least_failure_free(self, schedule, platform):
        evaluation = evaluate_schedule(schedule, platform)
        assert evaluation.expected_makespan >= schedule.failure_free_makespan

    def test_monotonic_in_failure_rate(self, schedule):
        rates = [0.0, 1e-4, 1e-3, 1e-2, 1e-1]
        values = [
            evaluate_schedule(schedule, Platform.from_platform_rate(r)).expected_makespan
            for r in rates
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_monotonic_in_downtime(self, schedule):
        low = evaluate_schedule(schedule, Platform.from_platform_rate(1e-2, downtime=0.0))
        high = evaluate_schedule(schedule, Platform.from_platform_rate(1e-2, downtime=10.0))
        assert high.expected_makespan > low.expected_makespan

    def test_task_times_sum_to_makespan(self, schedule, platform):
        evaluation = evaluate_schedule(schedule, platform)
        assert sum(evaluation.expected_task_times) == pytest.approx(evaluation.expected_makespan)

    def test_event_probabilities_sum_to_one(self, schedule, harsh_platform):
        evaluation = evaluate_schedule(schedule, harsh_platform, keep_probabilities=True)
        assert evaluation.event_probabilities is not None
        for row in evaluation.event_probabilities:
            assert sum(row) == pytest.approx(1.0, abs=1e-9)
            assert all(p >= 0.0 for p in row)

    def test_precomputed_lost_work_gives_same_result(self, schedule, platform):
        lw = compute_lost_work(schedule)
        direct = evaluate_schedule(schedule, platform).expected_makespan
        reused = evaluate_schedule(schedule, platform, lost_work=lw).expected_makespan
        assert direct == pytest.approx(reused)

    def test_expected_makespan_wrapper(self, schedule, platform):
        assert expected_makespan(schedule, platform) == pytest.approx(
            evaluate_schedule(schedule, platform).expected_makespan
        )

    def test_overhead_ratio_definition(self, schedule, platform):
        evaluation = evaluate_schedule(schedule, platform)
        assert evaluation.overhead_ratio == pytest.approx(
            evaluation.expected_makespan / schedule.workflow.total_weight
        )
        assert evaluation.slowdown == pytest.approx(
            evaluation.expected_makespan / schedule.failure_free_makespan
        )


class TestAgainstClosedForms:
    """The evaluator must agree with every closed form derived in the paper."""

    @pytest.mark.parametrize("checkpoints", [(), (1,), (2,), (1, 3), (0, 1, 2, 3, 4)])
    def test_chain_segment_decomposition(self, checkpoints):
        wf = generators.chain_workflow(5, weights=[4, 12, 7, 3, 9]).with_checkpoint_costs(
            mode="proportional", factor=0.15
        )
        platform = Platform.from_platform_rate(2e-2, downtime=1.0)
        schedule = Schedule(wf, range(5), checkpoints)
        assert evaluate_schedule(schedule, platform).expected_makespan == pytest.approx(
            chain_expected_makespan(wf, platform, checkpoints)
        )

    @pytest.mark.parametrize("checkpoint_source", [True, False])
    def test_fork_formula(self, checkpoint_source):
        wf = generators.fork_workflow(
            4, source_weight=20.0, sink_weights=[5, 10, 15, 20]
        ).with_checkpoint_costs(mode="proportional", factor=0.1)
        platform = Platform.from_platform_rate(1e-2, downtime=0.5)
        src = wf.sources[0]
        order = [src] + [i for i in range(wf.n_tasks) if i != src]
        schedule = Schedule(wf, order, {src} if checkpoint_source else ())
        assert evaluate_schedule(schedule, platform).expected_makespan == pytest.approx(
            fork_expected_makespan(wf, platform, checkpoint_source=checkpoint_source)
        )

    def test_fork_sink_order_is_irrelevant(self):
        """Theorem 1: any ordering of the sinks has the same expected makespan."""
        wf = generators.fork_workflow(4, source_weight=8.0, sink_weights=[3, 6, 9, 12]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(3e-2)
        values = []
        for perm in itertools.permutations(range(1, 5)):
            schedule = Schedule(wf, (0,) + perm, {0})
            values.append(evaluate_schedule(schedule, platform).expected_makespan)
        assert max(values) - min(values) < 1e-8 * max(values)

    @pytest.mark.parametrize("checkpoints", [(), (0,), (0, 2), (0, 1, 2, 3)])
    def test_join_equation_two(self, checkpoints):
        wf = generators.join_workflow(
            4, sink_weight=6.0, source_weights=[10, 20, 5, 8]
        ).with_checkpoint_costs(mode="proportional", factor=0.2)
        platform = Platform.from_platform_rate(1.5e-2, downtime=2.0)
        schedule = join_schedule(wf, platform, checkpoints)
        assert evaluate_schedule(schedule, platform).expected_makespan == pytest.approx(
            join_expected_makespan(wf, platform, checkpoints), rel=1e-9
        )

    def test_join_non_checkpointed_order_is_irrelevant(self):
        """Lemma 2 proof: ordering of the non-checkpointed sources does not matter."""
        wf = generators.join_workflow(3, sink_weight=4.0, source_weights=[7, 11, 3]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(2e-2)
        values = []
        for perm in itertools.permutations(range(3)):
            schedule = Schedule(wf, tuple(perm) + (3,), ())
            values.append(evaluate_schedule(schedule, platform).expected_makespan)
        assert max(values) - min(values) < 1e-9 * max(values)


class TestCheckpointTradeoff:
    """The paper's core trade-off: checkpoints cost time but bound re-execution."""

    def test_checkpointing_helps_under_heavy_failures(self):
        wf = generators.chain_workflow(6, weights=[50] * 6).with_checkpoint_costs(
            mode="proportional", factor=0.05
        )
        platform = Platform.from_platform_rate(5e-3)
        never = evaluate_schedule(Schedule(wf, range(6), ()), platform).expected_makespan
        always = evaluate_schedule(Schedule(wf, range(6), range(6)), platform).expected_makespan
        assert always < never

    def test_checkpointing_hurts_when_failure_free(self):
        wf = generators.chain_workflow(6, weights=[50] * 6).with_checkpoint_costs(
            mode="proportional", factor=0.05
        )
        platform = Platform.failure_free()
        never = evaluate_schedule(Schedule(wf, range(6), ()), platform).expected_makespan
        always = evaluate_schedule(Schedule(wf, range(6), range(6)), platform).expected_makespan
        assert never < always

    def test_extreme_rate_saturates_to_infinity(self):
        wf = generators.chain_workflow(3, weights=[1e4] * 3).with_checkpoint_costs(
            mode="constant", value=0.0
        )
        platform = Platform.from_platform_rate(1.0)
        value = evaluate_schedule(Schedule(wf, range(3), ()), platform).expected_makespan
        assert math.isinf(value)
