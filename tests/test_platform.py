"""Unit tests for :mod:`repro.core.platform`."""

from __future__ import annotations

import math

import pytest

from repro import Platform, PlatformSpec


class TestConstruction:
    def test_defaults_are_failure_free(self):
        platform = Platform()
        assert platform.is_failure_free
        assert platform.failure_rate == 0.0
        assert platform.mtbf == math.inf

    def test_aggregated_rate_is_p_times_lambda(self):
        # Section 3: lambda = p * lambda_proc.
        platform = Platform(processors=100, processor_failure_rate=1e-5)
        assert platform.failure_rate == pytest.approx(1e-3)
        assert platform.mtbf == pytest.approx(1e3)

    def test_processor_mtbf(self):
        platform = Platform(processors=10, processor_failure_rate=1e-4)
        assert platform.processor_mtbf == pytest.approx(1e4)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_processor_count_must_be_positive(self, bad):
        with pytest.raises(ValueError):
            Platform(processors=bad)

    def test_processor_count_must_be_int(self):
        with pytest.raises(TypeError):
            Platform(processors=2.5)  # type: ignore[arg-type]

    @pytest.mark.parametrize("bad", [-1e-3, math.nan, math.inf])
    def test_rate_validation(self, bad):
        with pytest.raises(ValueError):
            Platform(processor_failure_rate=bad)

    @pytest.mark.parametrize("bad", [-1.0, math.nan])
    def test_downtime_validation(self, bad):
        with pytest.raises(ValueError):
            Platform(downtime=bad)


class TestConstructors:
    def test_from_platform_rate(self):
        platform = Platform.from_platform_rate(1e-3, downtime=30.0)
        assert platform.failure_rate == pytest.approx(1e-3)
        assert platform.downtime == 30.0

    def test_from_mtbf(self):
        platform = Platform.from_mtbf(1000.0, processors=4)
        assert platform.failure_rate == pytest.approx(1e-3)

    def test_from_mtbf_infinite(self):
        assert Platform.from_mtbf(math.inf).is_failure_free

    def test_from_mtbf_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Platform.from_mtbf(0.0)

    def test_from_processor_mtbf(self):
        platform = Platform.from_processor_mtbf(1e5, processors=100)
        assert platform.failure_rate == pytest.approx(1e-3)

    def test_from_processor_mtbf_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Platform.from_processor_mtbf(-5)

    def test_failure_free_constructor(self):
        assert Platform.failure_free().is_failure_free


class TestHelpers:
    def test_scaled(self):
        platform = Platform.from_platform_rate(1e-3)
        assert platform.scaled(2.0).failure_rate == pytest.approx(2e-3)
        assert platform.scaled(0.0).is_failure_free

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            Platform.from_platform_rate(1e-3).scaled(-1.0)

    def test_describe(self):
        assert "failure-free" in Platform.failure_free().describe()
        text = Platform.from_platform_rate(1e-3, downtime=5).describe()
        assert "lambda" in text and "MTBF" in text

    def test_frozen(self):
        platform = Platform()
        with pytest.raises(AttributeError):
            platform.downtime = 3.0  # type: ignore[misc]


class TestPlatformSpec:
    def test_build_single_processor_matches_from_platform_rate(self):
        spec = PlatformSpec(failure_rate=1e-3, downtime=5.0)
        assert spec.build() == Platform.from_platform_rate(1e-3, downtime=5.0)

    def test_processors_scale_the_platform_rate(self):
        spec = PlatformSpec(failure_rate=1e-4, processors=8)
        platform = spec.build()
        assert platform.processors == 8
        assert platform.failure_rate == pytest.approx(8e-4)
        assert spec.platform_failure_rate == pytest.approx(8e-4)

    def test_round_trip_through_platform(self):
        spec = PlatformSpec(failure_rate=2e-3, downtime=30.0, processors=4)
        assert PlatformSpec.from_platform(spec.build()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_rate": -1e-3},
            {"failure_rate": math.inf},
            {"downtime": -1.0},
            {"downtime": math.nan},
            {"processors": 0},
        ],
    )
    def test_invalid_specs_fail_at_construction(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            PlatformSpec(**kwargs)

    def test_describe_delegates_to_platform(self):
        text = PlatformSpec(failure_rate=1e-3, downtime=60.0, processors=8).describe()
        assert "p=8" in text and "D=60s" in text
