"""Tests for content-addressed cache keys (repro.runtime.keys)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import Platform, Schedule
from repro.experiments import Scenario, build_workflow
from repro.heuristics import heuristic_rng
from repro.runtime import (
    canonical_json,
    digest,
    evaluation_key,
    platform_fingerprint,
    scenario_unit_key,
    schedule_fingerprint,
    stable_seed_words,
    workflow_fingerprint,
)
from repro.workflows import pegasus


@pytest.fixture(scope="module")
def workflow():
    return pegasus.montage(20, seed=7).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


class TestCanonicalization:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_digest_is_hex_sha256(self):
        key = digest({"x": 1.5})
        assert len(key) == 64
        assert int(key, 16) >= 0

    def test_digest_rejects_non_finite(self):
        with pytest.raises(ValueError):
            digest({"x": float("inf")})

    def test_stable_seed_words_shape_and_determinism(self):
        words = stable_seed_words("heuristic-rng", 3, "RF-CkptW")
        assert len(words) == 4
        assert all(0 <= w < 2**64 for w in words)
        assert words == stable_seed_words("heuristic-rng", 3, "RF-CkptW")
        assert words != stable_seed_words("heuristic-rng", 3, "RF-CkptC")


class TestFingerprints:
    def test_workflow_fingerprint_matches_regenerated_instance(self, workflow):
        again = pegasus.montage(20, seed=7).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        assert workflow_fingerprint(workflow) == workflow_fingerprint(again)

    def test_workflow_fingerprint_sees_content_changes(self, workflow):
        other_seed = pegasus.montage(20, seed=8).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        other_costs = pegasus.montage(20, seed=7).with_checkpoint_costs(
            mode="proportional", factor=0.01
        )
        assert workflow_fingerprint(workflow) != workflow_fingerprint(other_seed)
        assert workflow_fingerprint(workflow) != workflow_fingerprint(other_costs)

    def test_workflow_fingerprint_ignores_names(self, workflow):
        from dataclasses import replace

        renamed = workflow.map_tasks(
            lambda t: replace(t, name=f"renamed-{t.index}"), name="renamed"
        )
        assert workflow_fingerprint(workflow) == workflow_fingerprint(renamed)

    def test_platform_fingerprint(self):
        a = Platform.from_platform_rate(1e-3)
        b = Platform.from_platform_rate(1e-3, downtime=0.0)
        c = Platform.from_platform_rate(1e-4)
        assert platform_fingerprint(a) == platform_fingerprint(b)
        assert platform_fingerprint(a) != platform_fingerprint(c)

    def test_platform_fingerprint_carries_full_platform(self):
        """v2 keys: downtime and processor count are part of the content."""
        base = Platform.from_platform_rate(1e-3)
        downtime = Platform.from_platform_rate(1e-3, downtime=60.0)
        eight = Platform(processors=8, processor_failure_rate=1e-3)
        assert platform_fingerprint(base) != platform_fingerprint(downtime)
        assert platform_fingerprint(base) != platform_fingerprint(eight)

    def test_key_version_is_bumped_for_the_platform_schema(self):
        from repro.runtime import KEY_VERSION

        # v1 caches were written through a scenario layer that dropped the
        # downtime; the schema bump deliberately invalidates them once.
        assert KEY_VERSION >= 2

    def test_schedule_fingerprint_sees_order_and_checkpoints(self, workflow):
        from repro.heuristics import linearize

        order = linearize(workflow, "DF")
        base = Schedule(workflow, order, {order[0]})
        same = Schedule(workflow, order, {order[0]})
        other_ckpt = Schedule(workflow, order, {order[0], order[1]})
        assert schedule_fingerprint(base) == schedule_fingerprint(same)
        assert schedule_fingerprint(base) != schedule_fingerprint(other_ckpt)

    def test_evaluation_key_distinguishes_kinds(self, workflow):
        from repro.heuristics import linearize

        schedule = Schedule(workflow, linearize(workflow, "DF"), ())
        platform = Platform.from_platform_rate(1e-3)
        a = evaluation_key(schedule, platform)
        b = evaluation_key(schedule, platform, kind="with-probabilities")
        assert a != b


class TestUnitKeys:
    def test_unit_key_varies_with_each_input(self, workflow):
        platform = Platform.from_platform_rate(1e-3)
        base = dict(
            workflow=workflow,
            platform=platform,
            heuristic="DF-CkptW",
            search_mode="geometric",
            max_candidates=10,
            seed=0,
        )
        reference = scenario_unit_key(**base)
        assert reference == scenario_unit_key(**base)
        for change in (
            {"heuristic": "DF-CkptC"},
            {"search_mode": "exhaustive"},
            {"max_candidates": 20},
            {"seed": 1},
            {"platform": Platform.from_platform_rate(2e-3)},
            {"platform": Platform.from_platform_rate(1e-3, downtime=30.0)},
            {"platform": Platform(processors=4, processor_failure_rate=1e-3)},
        ):
            assert scenario_unit_key(**{**base, **change}) != reference

    def test_key_stability_across_processes(self):
        """The same scenario must produce the same key in a fresh interpreter."""
        scenario = Scenario(
            family="cybershake", n_tasks=18, failure_rate=1e-3, seed=5
        )
        workflow = build_workflow(scenario)
        local = scenario_unit_key(
            workflow=workflow,
            platform=scenario.platform,
            heuristic="RF-CkptW",
            search_mode="geometric",
            max_candidates=8,
            seed=scenario.seed,
        )
        script = (
            "from repro.experiments import Scenario, build_workflow\n"
            "from repro.runtime import scenario_unit_key\n"
            "scenario = Scenario(family='cybershake', n_tasks=18, failure_rate=1e-3, seed=5)\n"
            "workflow = build_workflow(scenario)\n"
            "print(scenario_unit_key(workflow=workflow, platform=scenario.platform,"
            " heuristic='RF-CkptW', search_mode='geometric', max_candidates=8,"
            " seed=scenario.seed))\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"  # keys must not depend on hash salting
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert remote == local


class TestHeuristicRng:
    def test_streams_are_reproducible(self):
        a = heuristic_rng(3, "RF-CkptW").integers(1 << 30, size=8)
        b = heuristic_rng(3, "RF-CkptW").integers(1 << 30, size=8)
        assert list(a) == list(b)

    def test_streams_are_independent_per_heuristic_and_seed(self):
        base = list(heuristic_rng(3, "RF-CkptW").integers(1 << 30, size=8))
        assert base != list(heuristic_rng(3, "RF-CkptC").integers(1 << 30, size=8))
        assert base != list(heuristic_rng(4, "RF-CkptW").integers(1 << 30, size=8))


class TestMonteCarloKeys:
    """Cache-key sensitivity of the Monte-Carlo / robustness keys."""

    def test_monte_carlo_key_varies_with_each_input(self, workflow):
        from repro.runtime import monte_carlo_key

        platform = Platform.from_platform_rate(1e-3)
        schedule = Schedule(workflow, workflow.topological_order(), {0})
        base = dict(
            failure_spec={"law": "exponential", "rate": 1e-3},
            n_runs=1000,
            seed=0,
            checkpoint_overlap=0.0,
        )
        reference = monte_carlo_key(schedule, platform, **base)
        assert reference == monte_carlo_key(schedule, platform, **base)
        for change in (
            {"failure_spec": {"law": "exponential", "rate": 2e-3}},
            {"failure_spec": {"law": "weibull", "scale": 1000.0, "shape": 0.7}},
            {"n_runs": 2000},
            {"seed": 1},
            {"checkpoint_overlap": 0.5},
        ):
            assert monte_carlo_key(schedule, platform, **{**base, **change}) != reference
        other_platform = Platform.from_platform_rate(1e-3, downtime=5.0)
        assert monte_carlo_key(schedule, other_platform, **base) != reference

    def test_law_parameters_alone_change_the_key(self, workflow):
        """Same law family, different shape parameter: keys must differ."""
        from repro.runtime import monte_carlo_key

        platform = Platform.from_platform_rate(1e-3)
        schedule = Schedule(workflow, workflow.topological_order(), {0})
        shapes = [0.5, 0.7, 1.0]
        keys = {
            monte_carlo_key(
                schedule,
                platform,
                failure_spec={"law": "weibull", "scale": 1000.0, "shape": shape},
                n_runs=500,
                seed=0,
            )
            for shape in shapes
        }
        assert len(keys) == len(shapes)

    def test_robustness_unit_key_varies_with_mc_inputs(self, workflow):
        from repro.runtime import robustness_unit_key

        platform = Platform.from_platform_rate(1e-3)
        base = dict(
            workflow=workflow,
            platform=platform,
            heuristic="DF-CkptW",
            search_mode="geometric",
            max_candidates=10,
            seed=0,
            failure_spec={"law": "lognormal", "mu": 6.4, "sigma": 1.0},
            n_runs=1000,
            mc_seed=0,
        )
        reference = robustness_unit_key(**base)
        assert reference == robustness_unit_key(**base)
        for change in (
            {"failure_spec": {"law": "lognormal", "mu": 6.4, "sigma": 1.2}},
            {"n_runs": 500},
            {"mc_seed": 3},
            {"heuristic": "RF-CkptW"},
            {"checkpoint_overlap": 0.25},
        ):
            assert robustness_unit_key(**{**base, **change}) != reference

    def test_mc_unit_key_is_backend_agnostic(self):
        """The engines are bit-for-bit identical, so the backend must not key."""
        from repro.runtime.runner import CampaignRunner, MonteCarloUnit

        scenario = Scenario(family="montage", n_tasks=20, failure_rate=1e-3, seed=2)
        runner = CampaignRunner()
        keys = {
            runner._mc_unit_key(
                MonteCarloUnit(scenario=scenario, n_runs=100, backend=backend)
            )
            for backend in (None, "auto", "python", "numpy")
        }
        assert len(keys) == 1
