"""Tests for the failure-law robustness campaign (repro.experiments.robustness)."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro import Platform
from repro.experiments import (
    RobustnessReport,
    RobustnessRow,
    law_specs_for,
    run_robustness,
    save_robustness_report,
)
from repro.runtime import ResultCache


SMOKE = dict(sizes=[20], n_runs=300, max_candidates=5)


class TestLawSpecs:
    def test_laws_are_mtbf_matched(self):
        from repro.simulation import failure_model_from_spec

        platform = Platform.from_platform_rate(1e-3)
        triples = law_specs_for(
            platform,
            ["exponential", "weibull", "lognormal"],
            weibull_shapes=[0.5, 0.7],
            lognormal_sigmas=[1.0],
        )
        assert [law for law, _, _ in triples] == [
            "exponential", "weibull", "weibull", "lognormal",
        ]
        for _, _, spec in triples:
            model = failure_model_from_spec(spec)
            assert model.mean_time_between_failures == pytest.approx(1000.0)

    def test_rejects_unknown_law(self):
        with pytest.raises(ValueError):
            law_specs_for(Platform.from_platform_rate(1e-3), ["gamma"])

    def test_rejects_failure_free_platform(self):
        with pytest.raises(ValueError):
            law_specs_for(Platform.failure_free(), ["exponential"])


class TestRunRobustness:
    @pytest.fixture(scope="class")
    def report(self):
        return run_robustness(["montage"], **SMOKE)

    def test_row_grid_is_complete(self, report):
        # 1 scenario x (1 exponential + 2 weibull shapes + 1 lognormal sigma)
        assert len(report.rows) == 4
        assert [row.law for row in report.rows] == [
            "exponential", "weibull", "weibull", "lognormal",
        ]
        assert all(isinstance(row, RobustnessRow) for row in report.rows)

    def test_exponential_validation_passes_on_default_seed(self, report):
        assert report.exponential_validated
        for row in report.exponential_rows:
            assert row.ci_low <= row.analytical <= row.ci_high

    def test_rows_carry_consistent_statistics(self, report):
        for row in report.rows:
            assert row.ci_low <= row.mc_mean <= row.ci_high
            assert row.n_runs == SMOKE["n_runs"]
            assert row.mtbf == pytest.approx(1000.0)
            assert row.mean_failures >= 0.0
            assert math.isfinite(row.relative_gap)

    def test_report_payload_is_json_able(self, report, tmp_path):
        path = save_robustness_report(report, tmp_path / "sub" / "report.json")
        payload = json.loads(path.read_text())
        assert payload["kind"] == "robustness-report"
        assert payload["exponential_validated"] is True
        assert len(payload["rows"]) == len(report.rows)
        assert set(payload["worst_gaps"]) == {"exponential", "weibull", "lognormal"}
        assert payload["worst_gaps"]["exponential"] <= 0.05

    def test_render_mentions_every_law(self, report):
        text = report.render()
        assert "exponential" in text
        assert "weibull(k=0.5)" in text
        assert "lognormal(s=1)" in text
        assert "PASS" in text


class TestPlatformAxes:
    def test_downtime_rows_validate_and_are_labelled(self):
        report = run_robustness(
            ["montage"], laws=["exponential"], downtimes=[0.0, 30.0], **SMOKE
        )
        assert len(report.rows) == 2
        assert {row.downtime for row in report.rows} == {0.0, 30.0}
        # Theorem 3 stays exact under constant downtime: the exponential
        # validation must hold on the D > 0 row too.
        assert report.exponential_validated
        by_downtime = {row.downtime: row for row in report.rows}
        assert by_downtime[30.0].analytical > by_downtime[0.0].analytical
        text = report.render()
        assert "montage-20-D30" in text
        assert "montage-20 " in text  # the D=0 label stays terse

    def test_processor_rows_scale_the_mtbf(self):
        report = run_robustness(
            ["montage"], laws=["exponential"], processors=[1, 4], **SMOKE
        )
        by_procs = {row.processors: row for row in report.rows}
        assert by_procs[4].mtbf == pytest.approx(by_procs[1].mtbf / 4)
        assert report.exponential_validated
        assert "montage-20-p4" in report.render()


class TestDeterminismAndCaching:
    def test_rerun_is_identical(self):
        first = run_robustness(["montage"], laws=["exponential"], **SMOKE)
        second = run_robustness(["montage"], laws=["exponential"], **SMOKE)
        assert first.rows == second.rows

    def test_warm_cache_answers_without_simulation(self):
        cache = ResultCache()
        cold = run_robustness(["montage"], laws=["weibull"], cache=cache, **SMOKE)
        assert cache.stats.misses == len(cold.rows)
        warm = run_robustness(["montage"], laws=["weibull"], cache=cache, **SMOKE)
        assert cache.stats.hits == len(warm.rows)
        assert warm.rows == cold.rows

    def test_parallel_matches_serial(self):
        serial = run_robustness(["montage"], laws=["exponential", "lognormal"], **SMOKE)
        parallel = run_robustness(
            ["montage"], laws=["exponential", "lognormal"], jobs=2, **SMOKE
        )
        assert parallel.rows == serial.rows

    def test_backends_produce_equivalent_reports(self):
        # The Monte-Carlo fields are bit-for-bit across backends; the
        # analytical expectation is only float-noise equal (the evaluation
        # backends agree within 1e-9 relative, which is why the cache keys
        # may exclude the backend in the first place).
        python = run_robustness(["montage"], laws=["exponential"], backend="python", **SMOKE)
        numpy_ = run_robustness(["montage"], laws=["exponential"], backend="numpy", **SMOKE)
        assert len(python.rows) == len(numpy_.rows)
        for py_row, np_row in zip(python.rows, numpy_.rows):
            assert dataclasses.replace(py_row, analytical=0.0) == dataclasses.replace(
                np_row, analytical=0.0
            )
            assert abs(py_row.analytical - np_row.analytical) <= 1e-9 * max(
                1.0, abs(py_row.analytical)
            )

    def test_mc_seed_changes_samples_but_not_analytical(self):
        base = run_robustness(["montage"], laws=["exponential"], mc_seed=0, **SMOKE)
        other = run_robustness(["montage"], laws=["exponential"], mc_seed=1, **SMOKE)
        assert base.rows[0].analytical == other.rows[0].analytical
        assert base.rows[0].mc_mean != other.rows[0].mc_mean


class TestReportProperties:
    def _row(self, law: str, analytical: float, mean: float, half: float) -> RobustnessRow:
        return RobustnessRow(
            family="montage", n_tasks=20, seed=0, heuristic="DF-CkptW",
            law=law, law_label=law, law_params={}, mtbf=1000.0, n_checkpointed=3,
            analytical=analytical, mc_mean=mean, mc_std=1.0,
            ci_low=mean - half, ci_high=mean + half,
            mean_failures=0.5, n_runs=100,
        )

    def test_validation_fails_when_analytical_escapes_ci(self):
        good = self._row("exponential", 100.0, 100.5, 1.0)
        bad = self._row("exponential", 100.0, 105.0, 1.0)
        assert RobustnessReport((good,), 100, "DF-CkptW", 0, 0).exponential_validated
        report = RobustnessReport((good, bad), 100, "DF-CkptW", 0, 0)
        assert not report.exponential_validated
        assert "NO" in report.render()

    def test_worst_gap(self):
        rows = (
            self._row("weibull", 100.0, 108.0, 1.0),
            self._row("weibull", 100.0, 96.0, 1.0),
        )
        report = RobustnessReport(rows, 100, "DF-CkptW", 0, 0)
        assert report.worst_gap("weibull") == pytest.approx(0.08)
        assert report.worst_gap("lognormal") == 0.0
