"""Tests for the Monte-Carlo execution engine."""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, run_monte_carlo, simulate_schedule
from repro.simulation import EventKind, ScriptedFailures, SimulationDiverged, WeibullFailures
from repro.workflows import generators


@pytest.fixture
def chain():
    return generators.chain_workflow(4, weights=[10, 20, 30, 40]).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


class TestFailureFreeExecution:
    def test_makespan_equals_failure_free_makespan(self, chain):
        schedule = Schedule(chain, range(4), {1, 2})
        result = simulate_schedule(schedule, Platform.failure_free(), rng=0)
        assert result.makespan == pytest.approx(schedule.failure_free_makespan)
        assert result.n_failures == 0
        assert result.total_recovery_time == 0.0

    def test_trace_records_all_completions(self, chain):
        schedule = Schedule(chain, range(4), {1})
        result = simulate_schedule(
            schedule, Platform.failure_free(), rng=0, collect_trace=True
        )
        assert result.trace is not None
        assert result.trace.tasks_completed() == [0, 1, 2, 3]
        assert result.trace.validate_monotonic()
        assert result.trace.n_failures == 0


class TestScriptedFailures:
    def test_single_failure_without_checkpoint_restarts_the_chain_segment(self, chain):
        # One failure 15 seconds in (during task 1), then no more failures.
        schedule = Schedule(chain, range(4), ())
        platform = Platform.from_platform_rate(1e-3, downtime=5.0)
        result = simulate_schedule(
            schedule,
            platform,
            rng=0,
            failure_model=ScriptedFailures([15.0]),
            collect_trace=True,
        )
        # Timeline: 10s of T0 + 5s of T1 lost, failure, 5s downtime, then T0 must
        # be re-executed (its output was lost and T1 needs it), then T1..T3.
        assert result.n_failures == 1
        assert result.makespan == pytest.approx(15.0 + 5.0 + 10.0 + 20.0 + 30.0 + 40.0)
        assert result.total_reexecution_time == pytest.approx(10.0)
        assert result.total_downtime == pytest.approx(5.0)

    def test_single_failure_with_checkpoint_recovers_instead(self, chain):
        # Checkpoint T0 (cost 1s): the same failure now only pays a recovery.
        schedule = Schedule(chain, range(4), {0})
        platform = Platform.from_platform_rate(1e-3, downtime=5.0)
        result = simulate_schedule(
            schedule,
            platform,
            rng=0,
            failure_model=ScriptedFailures([16.0]),  # 10 + 1 (ckpt) + 5 into T1
            collect_trace=True,
        )
        assert result.n_failures == 1
        assert result.total_recovery_time == pytest.approx(chain.task(0).recovery_cost)
        assert result.total_reexecution_time == 0.0
        expected = 16.0 + 5.0 + chain.task(0).recovery_cost + 20.0 + 30.0 + 40.0
        assert result.makespan == pytest.approx(expected)

    def test_failure_during_checkpoint_forces_reexecution(self, chain):
        # Failure strikes at t=10.5, in the middle of T0's checkpoint: the
        # checkpoint is not committed and T0 must be fully redone.
        schedule = Schedule(chain, range(4), {0})
        platform = Platform.from_platform_rate(1e-3, downtime=0.0)
        result = simulate_schedule(
            schedule,
            platform,
            rng=0,
            failure_model=ScriptedFailures([10.5]),
            collect_trace=True,
        )
        assert result.n_failures == 1
        expected = 10.5 + 10.0 + 1.0 + 20.0 + 30.0 + 40.0
        assert result.makespan == pytest.approx(expected)

    def test_two_failures_same_task(self, chain):
        schedule = Schedule(chain, range(4), ())
        platform = Platform.from_platform_rate(1e-3, downtime=1.0)
        result = simulate_schedule(
            schedule,
            platform,
            rng=0,
            failure_model=ScriptedFailures([5.0, 3.0]),
            collect_trace=True,
        )
        # 5s lost, failure, 1s downtime, 3s lost, failure, 1s downtime, then clean run.
        assert result.n_failures == 2
        assert result.makespan == pytest.approx(5 + 1 + 3 + 1 + 100.0)


class TestPaperFigureOneNarrative:
    def test_failure_during_t5_triggers_the_documented_recoveries(self, paper_example):
        """Reproduces the Section-3 walk-through of Figure 1."""
        schedule = Schedule(paper_example, (0, 3, 1, 2, 4, 5, 6, 7), {3, 4})
        platform = Platform.from_platform_rate(1e-4, downtime=0.0)
        # Failure-free prefix: T0(10) T3*(20+2) T1(8) T2(12) T4*(15+1.5) = 68.5s;
        # inject the single failure 1 second into T5.
        result = simulate_schedule(
            schedule,
            platform,
            rng=0,
            failure_model=ScriptedFailures([69.5]),
            collect_trace=True,
        )
        assert result.n_failures == 1
        trace = result.trace
        recoveries = [e.task for e in trace.of_kind(EventKind.RECOVERY)]
        reexecutions = [e.task for e in trace.of_kind(EventKind.RE_EXECUTION)]
        # T5 needs T3's checkpoint; T6 needs T4's checkpoint; T7 needs T1 and T2
        # re-executed (no checkpoint on that path).
        assert recoveries == [3, 4]
        assert reexecutions == [1, 2]
        # Every task completes exactly once at the end.
        assert trace.tasks_completed() == [0, 3, 1, 2, 4, 5, 6, 7]


class TestStatisticalAgreement:
    def test_mean_converges_to_analytical_single_task(self):
        from repro import evaluate_schedule

        wf = generators.single_task_workflow(weight=50.0).with_checkpoint_costs(
            mode="constant", value=5.0
        )
        schedule = Schedule(wf, (0,), {0})
        platform = Platform.from_platform_rate(1e-2, downtime=2.0)
        summary = run_monte_carlo(schedule, platform, n_runs=4000, rng=1)
        analytical = evaluate_schedule(schedule, platform).expected_makespan
        low, high = summary.ci95
        assert low <= analytical <= high or abs(summary.mean_makespan - analytical) < 0.05 * analytical

    def test_downtime_increases_makespan(self, chain):
        schedule = Schedule(chain, range(4), {0, 1, 2})
        no_down = run_monte_carlo(
            schedule, Platform.from_platform_rate(1e-2, downtime=0.0), n_runs=800, rng=2
        )
        with_down = run_monte_carlo(
            schedule, Platform.from_platform_rate(1e-2, downtime=20.0), n_runs=800, rng=2
        )
        assert with_down.mean_makespan > no_down.mean_makespan

    def test_weibull_failures_supported(self, chain):
        schedule = Schedule(chain, range(4), {0, 1, 2})
        platform = Platform.from_platform_rate(1e-2)
        summary = run_monte_carlo(
            schedule,
            platform,
            n_runs=300,
            rng=3,
            failure_model=WeibullFailures.from_mtbf(100.0, shape=0.7),
        )
        assert summary.mean_makespan > schedule.failure_free_makespan - 1e-9
        assert summary.mean_failures > 0

    def test_keep_samples(self, chain):
        schedule = Schedule(chain, range(4), ())
        summary = run_monte_carlo(
            schedule, Platform.from_platform_rate(1e-3), n_runs=50, rng=4, keep_samples=True
        )
        assert len(summary.samples) == 50
        assert summary.min_makespan <= summary.mean_makespan <= summary.max_makespan


class TestGuards:
    def test_divergence_detection(self):
        wf = generators.chain_workflow(2, weights=[1e4, 1e4]).with_checkpoint_costs(
            mode="constant", value=0.0
        )
        schedule = Schedule(wf, (0, 1), ())
        platform = Platform.from_platform_rate(0.5)
        with pytest.raises(SimulationDiverged):
            simulate_schedule(schedule, platform, rng=0, max_failures=50)

    def test_invalid_overlap_rejected(self, chain):
        schedule = Schedule(chain, range(4), {0})
        with pytest.raises(ValueError):
            simulate_schedule(schedule, Platform.failure_free(), checkpoint_overlap=1.5)

    def test_invalid_run_count_rejected(self, chain):
        schedule = Schedule(chain, range(4), ())
        with pytest.raises(ValueError):
            run_monte_carlo(schedule, Platform.failure_free(), n_runs=0)


class TestNonBlockingCheckpointExtension:
    def test_full_overlap_removes_checkpoint_time(self, chain):
        schedule = Schedule(chain, range(4), {0, 1, 2, 3})
        blocking = simulate_schedule(schedule, Platform.failure_free(), rng=0)
        overlapped = simulate_schedule(
            schedule, Platform.failure_free(), rng=0, checkpoint_overlap=1.0
        )
        assert overlapped.makespan == pytest.approx(chain.total_weight)
        assert blocking.makespan == pytest.approx(schedule.failure_free_makespan)

    def test_partial_overlap_interpolates(self, chain):
        schedule = Schedule(chain, range(4), {0, 1, 2, 3})
        half = simulate_schedule(
            schedule, Platform.failure_free(), rng=0, checkpoint_overlap=0.5
        )
        expected = chain.total_weight + 0.5 * schedule.total_checkpoint_cost
        assert half.makespan == pytest.approx(expected)
