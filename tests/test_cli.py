"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.workflows import load_schedule, load_workflow


@pytest.fixture
def workflow_path(tmp_path):
    path = tmp_path / "wf.json"
    code = main([
        "generate",
        "--family", "cybershake",
        "--tasks", "25",
        "--seed", "3",
        "--output", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture
def schedule_path(tmp_path, workflow_path):
    path = tmp_path / "sched.json"
    code = main([
        "solve",
        "--workflow", str(workflow_path),
        "--heuristic", "DF-CkptW",
        "--failure-rate", "1e-3",
        "--output", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestGenerate:
    def test_generates_pegasus_workflow(self, workflow_path, capsys):
        workflow = load_workflow(workflow_path)
        assert 20 <= workflow.n_tasks <= 30
        assert all(t.checkpoint_cost > 0 for t in workflow.tasks)

    def test_generates_generic_chain(self, tmp_path):
        path = tmp_path / "chain.json"
        assert main(["generate", "--family", "chain", "--tasks", "12", "--output", str(path)]) == 0
        workflow = load_workflow(path)
        assert workflow.n_tasks == 12
        assert workflow.is_chain()

    def test_constant_checkpoint_mode(self, tmp_path):
        path = tmp_path / "wf.json"
        assert main([
            "generate", "--family", "montage", "--tasks", "30",
            "--checkpoint-mode", "constant", "--checkpoint-value", "5",
            "--output", str(path),
        ]) == 0
        workflow = load_workflow(path)
        assert all(t.checkpoint_cost == pytest.approx(5.0) for t in workflow.tasks)

    def test_unknown_family_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--family", "nonsense", "--output", str(tmp_path / "x.json")])


class TestSolveAndEvaluate:
    def test_solve_writes_valid_schedule(self, schedule_path, workflow_path, capsys):
        schedule = load_schedule(schedule_path)
        workflow = load_workflow(workflow_path)
        assert sorted(schedule.order) == list(range(workflow.n_tasks))
        out = capsys.readouterr().out
        assert "E[makespan]" in out or out == ""  # printed during the fixture

    def test_solve_with_refinement(self, tmp_path, workflow_path, capsys):
        path = tmp_path / "refined.json"
        code = main([
            "solve", "--workflow", str(workflow_path),
            "--heuristic", "DF-CkptPer", "--refine",
            "--output", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "refinement" in out
        assert path.exists()

    def test_evaluate_outputs_json(self, schedule_path, capsys):
        code = main(["evaluate", "--schedule", str(schedule_path), "--failure-rate", "1e-3"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["expected_makespan"] >= payload["failure_free_work"]
        assert payload["overhead_ratio"] >= 1.0

    def test_analyse_report(self, schedule_path, capsys):
        code = main([
            "analyse", "--schedule", str(schedule_path),
            "--failure-rate", "1e-3", "--top", "3", "--utilities",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "expected makespan" in out
        assert "checkpoint utilities" in out

    def test_simulate_summary(self, schedule_path, capsys):
        code = main([
            "simulate", "--schedule", str(schedule_path),
            "--failure-rate", "1e-3", "--runs", "50", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated executions" in out
        assert "95% CI" in out


def _tiny_all_figures(*, preset, seed, jobs=1, cache=None, progress=None, backend=None):
    """Drop-in for repro.cli.all_figures with a fast single-figure config."""
    from repro.experiments import figure2

    return {
        "figure2": figure2(
            sizes=(20,), seed=seed, search_mode="geometric",
            jobs=jobs, cache=cache, progress=progress,
        )
    }


class TestFigures:
    def test_figures_smoke_writes_csv(self, tmp_path, capsys, monkeypatch):
        # Patch the figure runner to a tiny configuration to keep the test fast.
        import repro.cli as cli

        monkeypatch.setattr(cli, "all_figures", _tiny_all_figures)
        outdir = tmp_path / "figs"
        code = main(["figures", "--preset", "smoke", "--outdir", str(outdir)])
        assert code == 0
        assert (outdir / "figure2.csv").exists()
        assert "figure2" in capsys.readouterr().out

    def test_figures_fails_fast_on_unwritable_outdir(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        def sweep_must_not_run(**kwargs):
            raise AssertionError("sweep ran despite unwritable outdir")

        monkeypatch.setattr(cli, "all_figures", sweep_must_not_run)
        monkeypatch.setattr(cli.os, "access", lambda *a, **k: False)
        assert main(["figures", "--outdir", str(tmp_path / "figs")]) == 2
        assert "not writable" in capsys.readouterr().err
        assert not (tmp_path / "figs").exists()

    def test_figures_with_cache_reports_stats(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "all_figures", _tiny_all_figures)
        cache_path = tmp_path / "cache.sqlite"
        args = [
            "figures", "--outdir", str(tmp_path / "figs"),
            "--jobs", "1", "--cache", str(cache_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "misses" in first and cache_path.exists()

        assert main(args) == 0
        second = capsys.readouterr().out
        assert ", 0 misses" in second  # fully warm re-run


class TestPlatformAgreement:
    """Direct CLI platform paths and scenario paths must price identically."""

    def test_evaluate_downtime_matches_campaign_scenario(self, tmp_path, capsys):
        from repro.experiments import Scenario, run_heuristic

        seed, downtime = 3, 2.0
        wf_path = tmp_path / "wf.json"
        sched_path = tmp_path / "sched.json"
        assert main(["generate", "--family", "cybershake", "--tasks", "25",
                     "--seed", str(seed), "--output", str(wf_path)]) == 0
        assert main(["solve", "--workflow", str(wf_path), "--heuristic", "DF-CkptW",
                     "--failure-rate", "1e-3", "--downtime", str(downtime),
                     "--output", str(sched_path)]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--schedule", str(sched_path),
                     "--failure-rate", "1e-3", "--downtime", str(downtime)]) == 0
        cli_makespan = json.loads(capsys.readouterr().out)["expected_makespan"]

        scenario = Scenario(
            family="cybershake", n_tasks=25, failure_rate=1e-3,
            downtime=downtime, heuristics=("DF-CkptW",), seed=seed,
        )
        row = run_heuristic(scenario, "DF-CkptW")
        assert cli_makespan == pytest.approx(row.expected_makespan, rel=1e-12)

    def test_evaluate_processors_scale_the_rate(self, tmp_path, capsys):
        from repro.experiments import Scenario, run_heuristic

        wf_path = tmp_path / "wf.json"
        sched_path = tmp_path / "sched.json"
        assert main(["generate", "--family", "montage", "--tasks", "20",
                     "--seed", "1", "--output", str(wf_path)]) == 0
        assert main(["solve", "--workflow", str(wf_path), "--heuristic", "DF-CkptW",
                     "--failure-rate", "2.5e-4", "--processors", "4",
                     "--output", str(sched_path)]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--schedule", str(sched_path),
                     "--failure-rate", "2.5e-4", "--processors", "4"]) == 0
        cli_makespan = json.loads(capsys.readouterr().out)["expected_makespan"]
        scenario = Scenario(
            family="montage", n_tasks=20, failure_rate=2.5e-4, processors=4,
            heuristics=("DF-CkptW",), seed=1,
        )
        row = run_heuristic(scenario, "DF-CkptW")
        assert cli_makespan == pytest.approx(row.expected_makespan, rel=1e-12)


class TestCampaignCommand:
    CAMPAIGN_ARGS = [
        "campaign",
        "--families", "montage",
        "--sizes", "15",
        "--seeds", "0,1",
        "--heuristics", "DF-CkptW,DF-CkptNvr",
        "--max-candidates", "5",
    ]

    def test_campaign_prints_aggregation_and_writes_csv(self, tmp_path, capsys):
        out_csv = tmp_path / "rows.csv"
        code = main(self.CAMPAIGN_ARGS + ["--output", str(out_csv)])
        assert code == 0
        out = capsys.readouterr().out
        assert "DF-CkptW" in out and "montage" in out
        assert out_csv.exists()
        assert "heuristic" in out_csv.read_text()

    def test_campaign_fails_fast_on_missing_output_dir(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        def sweep_must_not_run(*args, **kwargs):
            raise AssertionError("sweep ran despite bad --output")

        monkeypatch.setattr(cli, "run_campaign", sweep_must_not_run)
        out = tmp_path / "missing" / "rows.csv"
        assert main(self.CAMPAIGN_ARGS + ["--output", str(out)]) == 2
        assert "does not exist" in capsys.readouterr().err

    PLATFORM_GRID_ARGS = [
        "campaign",
        "--families", "montage",
        "--sizes", "15",
        "--seeds", "0,1",
        "--heuristics", "DF-CkptW",
        "--max-candidates", "5",
        "--downtimes", "0,30",
        "--processors", "1,4",
    ]

    def test_campaign_platform_axes_render_distinct_points(self, tmp_path, capsys):
        out_csv = tmp_path / "rows.csv"
        assert main(self.PLATFORM_GRID_ARGS + ["--output", str(out_csv)]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0].split()
        assert "D" in header and "p" in header
        from repro.experiments import load_rows_csv

        rows = load_rows_csv(out_csv)
        # 4 platform points x 2 seeds x 1 heuristic
        assert len(rows) == 8
        assert {(r.downtime, r.processors) for r in rows} == {
            (0.0, 1), (0.0, 4), (30.0, 1), (30.0, 4),
        }

    def test_sharded_campaign_merges_to_the_unsharded_report(self, tmp_path, capsys):
        """Acceptance: 2 shards + merge == unsharded, byte for byte."""
        full_report = tmp_path / "full.txt"
        merged_report = tmp_path / "merged.txt"
        assert main(self.PLATFORM_GRID_ARGS + ["--report", str(full_report)]) == 0
        for shard in ("1/2", "2/2"):
            assert main(
                self.PLATFORM_GRID_ARGS
                + ["--shard", shard, "--output", str(tmp_path / f"shard{shard[0]}.csv")]
            ) == 0
        capsys.readouterr()
        # Shards passed in reverse order: the merge must not care.
        assert main(["campaign", "merge", str(tmp_path / "shard2.csv"),
                     str(tmp_path / "shard1.csv"), "--report", str(merged_report),
                     "--output", str(tmp_path / "merged.csv")]) == 0
        assert merged_report.read_bytes() == full_report.read_bytes()
        out = capsys.readouterr().out
        assert "wrote" in out
        from repro.experiments import load_rows_csv

        merged_rows = load_rows_csv(tmp_path / "merged.csv")
        assert len(merged_rows) == 8

    def test_lambda_downtime_preset(self, capsys):
        assert main([
            "campaign", "--preset", "lambda-downtime",
            "--families", "montage", "--sizes", "15", "--seeds", "0",
            "--heuristics", "DF-CkptNvr", "--downtimes", "0,30",
        ]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0].split()
        # The preset sweeps lambda at several downtimes: both are labelled.
        assert "lambda" in header and "D" in header

    def test_merge_options_work_before_the_subcommand(self, tmp_path, capsys):
        shards = []
        for designator in ("1/2", "2/2"):
            shard = tmp_path / f"shard{designator[0]}.csv"
            assert main(self.PLATFORM_GRID_ARGS + ["--shard", designator,
                                                   "--output", str(shard)]) == 0
            shards.append(str(shard))
        capsys.readouterr()
        out_csv = tmp_path / "merged.csv"
        # Parent-level -o before 'merge' must not be silently discarded.
        assert main(["campaign", "-o", str(out_csv), "merge", *shards]) == 0
        assert out_csv.exists()

    def test_merge_rejects_duplicate_shard(self, tmp_path, capsys):
        shard = tmp_path / "shard.csv"
        assert main(self.PLATFORM_GRID_ARGS + ["--shard", "1/2",
                                               "--output", str(shard)]) == 0
        capsys.readouterr()
        # The shard marker names the duplicated shard before any row-level
        # duplicate detection has to engage.
        assert main(["campaign", "merge", str(shard), str(shard)]) == 2
        assert "shard 1/2 appears twice" in capsys.readouterr().err

    def test_merge_rejects_duplicate_rows_in_unmarked_inputs(self, tmp_path, capsys):
        full = tmp_path / "full.csv"
        assert main(self.PLATFORM_GRID_ARGS + ["--output", str(full)]) == 0
        capsys.readouterr()
        # Unmarked (full-campaign) inputs skip the shard-set validation but
        # still trip the row-identity duplicate detector.
        assert main(["campaign", "merge", str(full), str(full)]) == 2
        assert "duplicate result row" in capsys.readouterr().err

    def test_merge_rejects_missing_shard_naming_the_gap(self, tmp_path, capsys):
        shard = tmp_path / "shard1.csv"
        assert main(self.PLATFORM_GRID_ARGS + ["--shard", "1/3",
                                               "--output", str(shard)]) == 0
        capsys.readouterr()
        assert main(["campaign", "merge", str(shard)]) == 2
        err = capsys.readouterr().err
        assert "missing shard(s) 2/3, 3/3" in err

    def test_merge_fails_fast_on_missing_output_dir(self, tmp_path, capsys):
        shard = tmp_path / "shard.csv"
        assert main(self.PLATFORM_GRID_ARGS + ["--shard", "1/2",
                                               "--output", str(shard)]) == 0
        capsys.readouterr()
        missing = tmp_path / "absent" / "out.csv"
        assert main(["campaign", "merge", str(shard), "--output", str(missing)]) == 2
        err = capsys.readouterr()
        assert "does not exist" in err.err
        # Nothing was printed or written before the rejection.
        assert err.out == ""
        assert not missing.exists()

    def test_merge_rejects_empty_and_foreign_csvs(self, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        assert main(["campaign", "merge", str(empty)]) == 2
        assert capsys.readouterr().err.startswith("error:")
        foreign = tmp_path / "foreign.csv"
        foreign.write_text("a,b\n1,2\n")
        assert main(["campaign", "merge", str(foreign)]) == 2
        assert "unknown result-row column" in capsys.readouterr().err
        assert main(["campaign", "merge", str(tmp_path / "absent.csv")]) == 2

    def test_bad_shard_rejected_without_side_effects(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.sqlite"
        assert main(self.CAMPAIGN_ARGS + ["--shard", "3/2",
                                          "--cache", str(cache_path)]) == 2
        assert capsys.readouterr().err.startswith("error:")
        assert not cache_path.exists()

    def test_campaign_with_jobs_and_cache(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.sqlite"
        args = self.CAMPAIGN_ARGS + ["--jobs", "2", "--cache", str(cache_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "misses" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ", 0 misses" in warm
        # Aggregation tables of the cold and warm runs are identical.
        table = lambda text: [l for l in text.splitlines() if "montage" in l]
        assert table(warm) == table(cold)


class TestRobustnessCommand:
    ROBUSTNESS_ARGS = [
        "robustness",
        "--families", "montage",
        "--sizes", "20",
        "--laws", "exponential,weibull",
        "--shapes", "0.7",
        "--runs", "300",
        "--max-candidates", "5",
    ]

    def test_robustness_prints_table_and_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "robustness.json"
        code = main(self.ROBUSTNESS_ARGS + ["--output", str(report_path), "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "exponential" in out and "weibull(k=0.7)" in out
        assert "PASS" in out
        payload = json.loads(report_path.read_text())
        assert payload["exponential_validated"] is True
        assert len(payload["rows"]) == 2

    def test_robustness_with_cache_is_warm_on_rerun(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.sqlite"
        args = self.ROBUSTNESS_ARGS + ["--cache", str(cache_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "misses" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert ", 0 misses" in warm

    def test_robustness_rejects_bad_law(self, capsys):
        assert main(["robustness", "--laws", "gamma", "--runs", "50"]) == 2
        assert "unknown failure law" in capsys.readouterr().err

    def test_robustness_check_requires_exponential(self, capsys):
        assert main(["robustness", "--laws", "weibull", "--check", "--runs", "50"]) == 2
        assert "must include 'exponential'" in capsys.readouterr().err

    def test_robustness_rejects_single_run(self, capsys):
        assert main(["robustness", "--runs", "1"]) == 2
        assert "at least 2" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_reports_entries(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.sqlite"
        assert main([
            "campaign", "--families", "montage", "--sizes", "15",
            "--seeds", "0", "--heuristics", "DF-CkptNvr",
            "--cache", str(cache_path),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", str(cache_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["puts"] == 1

    def test_stats_missing_file_fails(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "absent.sqlite")]) == 1

    def test_stats_on_corrupt_file_reports_cleanly(self, tmp_path, capsys):
        path = tmp_path / "not-a-db.sqlite"
        path.write_text("this is not sqlite")
        assert main(["cache", "stats", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestErrorHandling:
    """Routine bad input exits with a one-line message, not a traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--families", "bogus", "--sizes", "10", "--seeds", "0"],
            ["campaign", "--families", "montage", "--sizes", "10", "--seeds", ""],
            ["campaign", "--families", "", "--sizes", "10", "--seeds", "0"],
            ["campaign", "--families", "montage", "--sizes", "", "--seeds", "0"],
            ["campaign", "--families", "montage", "--sizes", "10", "--seeds", "0",
             "--heuristics", "DF-CkptWrong"],
            ["campaign", "--families", "montage", "--sizes", "10", "--seeds", "0",
             "--heuristics", "DF-CkptNvr", "--jobs", "-3"],
            ["campaign", "--families", "montage", "--sizes", "10", "--seeds", "0",
             "--heuristics", "DF-CkptW", "--search-mode", "geometric",
             "--max-candidates", "1"],
        ],
    )
    def test_bad_input_exits_2_with_message(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_rejected_invocation_creates_no_cache_file(self, tmp_path, capsys):
        cache_path = tmp_path / "new" / "cache.sqlite"
        assert main(["campaign", "--families", "montage", "--sizes", "10",
                     "--seeds", "", "--cache", str(cache_path)]) == 2
        assert not cache_path.exists()
        assert not cache_path.parent.exists()
        assert main(["campaign", "--families", "montage", "--sizes", "10",
                     "--seeds", "0", "--jobs", "-3",
                     "--cache", str(cache_path)]) == 2
        assert not cache_path.exists()
        assert main(["campaign", "--families", "montage", "--sizes", "10",
                     "--seeds", "0", "--heuristics", "DF-CkptWrong",
                     "--cache", str(cache_path)]) == 2
        assert not cache_path.exists()
        # Failure past the cheap checks (generator rejects the size) is also
        # cleaned up, including the parent directory the cache created.
        assert main(["campaign", "--families", "montage", "--sizes", "-5",
                     "--seeds", "0", "--heuristics", "DF-CkptNvr",
                     "--cache", str(cache_path)]) == 2
        assert not cache_path.exists()
        assert not cache_path.parent.exists()

    def test_foreign_sqlite_file_refused_and_untouched(self, tmp_path, capsys):
        import sqlite3

        foreign = tmp_path / "someapp.db"
        conn = sqlite3.connect(foreign)
        conn.execute("CREATE TABLE app_data (id INTEGER PRIMARY KEY)")
        conn.commit()
        conn.close()
        before = foreign.read_bytes()
        assert main(["campaign", "--families", "montage", "--sizes", "15",
                     "--seeds", "0", "--heuristics", "DF-CkptNvr",
                     "--cache", str(foreign)]) == 2
        assert capsys.readouterr().err.startswith("error:")
        assert foreign.read_bytes() == before

    def test_repro_debug_zero_means_off(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "0")
        assert main(["campaign", "--families", "bogus", "--sizes", "10",
                     "--seeds", "0"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_repro_debug_one_reraises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        with pytest.raises(ValueError):
            main(["campaign", "--families", "bogus", "--sizes", "10",
                  "--seeds", "0"])

    def test_clear_empties_the_store(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.sqlite"
        assert main([
            "campaign", "--families", "montage", "--sizes", "15",
            "--seeds", "0", "--heuristics", "DF-CkptNvr",
            "--cache", str(cache_path),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", str(cache_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", str(cache_path)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestJsonErrorMode:
    """--json renders failures in the service daemon's error shape."""

    def test_missing_file_is_io_error(self, tmp_path, capsys):
        missing = tmp_path / "absent.json"
        assert main(["--json", "evaluate", "--schedule", str(missing)]) == 2
        payload = json.loads(capsys.readouterr().err)
        assert payload["error"]["code"] == "io-error"
        assert "absent.json" in payload["error"]["message"]

    def test_bad_input_is_bad_request(self, capsys):
        assert main(["--json", "campaign", "--families", "bogus",
                     "--sizes", "10", "--seeds", "0"]) == 2
        payload = json.loads(capsys.readouterr().err)
        assert payload["error"]["code"] == "bad-request"

    def test_plain_mode_is_unchanged(self, tmp_path, capsys):
        missing = tmp_path / "absent.json"
        assert main(["evaluate", "--schedule", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")


class TestServeParser:
    def test_serve_accepts_its_options(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve", "--host", "0.0.0.0", "--port", "0", "--jobs", "2",
            "--workers", "4", "--cache", "/tmp/c.sqlite",
            "--batch-window", "0.05", "--queue-max", "64",
            "--backend", "python",
        ])
        assert args.command == "serve"
        assert args.port == 0
        assert args.cache_path == "/tmp/c.sqlite"
        assert args.batch_window == 0.05

    def test_serve_rejects_bad_jobs_before_binding(self, capsys):
        assert main(["serve", "--jobs", "-3", "--port", "0"]) == 2
        assert capsys.readouterr().err.startswith("error:")
