"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.workflows import load_schedule, load_workflow


@pytest.fixture
def workflow_path(tmp_path):
    path = tmp_path / "wf.json"
    code = main([
        "generate",
        "--family", "cybershake",
        "--tasks", "25",
        "--seed", "3",
        "--output", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture
def schedule_path(tmp_path, workflow_path):
    path = tmp_path / "sched.json"
    code = main([
        "solve",
        "--workflow", str(workflow_path),
        "--heuristic", "DF-CkptW",
        "--failure-rate", "1e-3",
        "--output", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestGenerate:
    def test_generates_pegasus_workflow(self, workflow_path, capsys):
        workflow = load_workflow(workflow_path)
        assert 20 <= workflow.n_tasks <= 30
        assert all(t.checkpoint_cost > 0 for t in workflow.tasks)

    def test_generates_generic_chain(self, tmp_path):
        path = tmp_path / "chain.json"
        assert main(["generate", "--family", "chain", "--tasks", "12", "--output", str(path)]) == 0
        workflow = load_workflow(path)
        assert workflow.n_tasks == 12
        assert workflow.is_chain()

    def test_constant_checkpoint_mode(self, tmp_path):
        path = tmp_path / "wf.json"
        assert main([
            "generate", "--family", "montage", "--tasks", "30",
            "--checkpoint-mode", "constant", "--checkpoint-value", "5",
            "--output", str(path),
        ]) == 0
        workflow = load_workflow(path)
        assert all(t.checkpoint_cost == pytest.approx(5.0) for t in workflow.tasks)

    def test_unknown_family_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--family", "nonsense", "--output", str(tmp_path / "x.json")])


class TestSolveAndEvaluate:
    def test_solve_writes_valid_schedule(self, schedule_path, workflow_path, capsys):
        schedule = load_schedule(schedule_path)
        workflow = load_workflow(workflow_path)
        assert sorted(schedule.order) == list(range(workflow.n_tasks))
        out = capsys.readouterr().out
        assert "E[makespan]" in out or out == ""  # printed during the fixture

    def test_solve_with_refinement(self, tmp_path, workflow_path, capsys):
        path = tmp_path / "refined.json"
        code = main([
            "solve", "--workflow", str(workflow_path),
            "--heuristic", "DF-CkptPer", "--refine",
            "--output", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "refinement" in out
        assert path.exists()

    def test_evaluate_outputs_json(self, schedule_path, capsys):
        code = main(["evaluate", "--schedule", str(schedule_path), "--failure-rate", "1e-3"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["expected_makespan"] >= payload["failure_free_work"]
        assert payload["overhead_ratio"] >= 1.0

    def test_analyse_report(self, schedule_path, capsys):
        code = main([
            "analyse", "--schedule", str(schedule_path),
            "--failure-rate", "1e-3", "--top", "3", "--utilities",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "expected makespan" in out
        assert "checkpoint utilities" in out

    def test_simulate_summary(self, schedule_path, capsys):
        code = main([
            "simulate", "--schedule", str(schedule_path),
            "--failure-rate", "1e-3", "--runs", "50", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated executions" in out
        assert "95% CI" in out


class TestFigures:
    def test_figures_smoke_writes_csv(self, tmp_path, capsys, monkeypatch):
        # Patch the figure runner to a tiny configuration to keep the test fast.
        import repro.cli as cli

        def tiny_all_figures(*, preset, seed):
            from repro.experiments import figure2

            return {"figure2": figure2(sizes=(20,), seed=seed, search_mode="geometric")}

        monkeypatch.setattr(cli, "all_figures", tiny_all_figures)
        outdir = tmp_path / "figs"
        code = main(["figures", "--preset", "smoke", "--outdir", str(outdir)])
        assert code == 0
        assert (outdir / "figure2.csv").exists()
        assert "figure2" in capsys.readouterr().out
