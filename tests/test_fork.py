"""Tests for Theorem 1 (fork DAGs)."""

from __future__ import annotations

import pytest

from repro import Platform
from repro.theory import fork_expected_makespan, optimal_schedule, solve_fork
from repro.workflows import generators


class TestValidation:
    def test_rejects_non_fork(self):
        wf = generators.chain_workflow(3, seed=0)
        with pytest.raises(ValueError):
            solve_fork(wf, Platform.from_platform_rate(1e-3))
        with pytest.raises(ValueError):
            fork_expected_makespan(wf, Platform.from_platform_rate(1e-3), checkpoint_source=True)


class TestClosedForm:
    def test_failure_free_reduces_to_total_work(self):
        wf = generators.fork_workflow(3, source_weight=10.0, sink_weights=[1, 2, 3]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.failure_free()
        no_ckpt = fork_expected_makespan(wf, platform, checkpoint_source=False)
        with_ckpt = fork_expected_makespan(wf, platform, checkpoint_source=True)
        assert no_ckpt == pytest.approx(16.0)
        assert with_ckpt == pytest.approx(16.0 + 1.0)  # checkpoint of the source

    def test_checkpoint_decision_flips_with_failure_rate(self):
        """Cheap checkpoint + many sinks: checkpointing wins once failures appear."""
        wf = generators.fork_workflow(
            8, source_weight=100.0, sink_weights=[20] * 8
        ).with_checkpoint_costs(mode="proportional", factor=0.02)
        quiet = solve_fork(wf, Platform.from_platform_rate(1e-7))
        noisy = solve_fork(wf, Platform.from_platform_rate(1e-2))
        assert not quiet.checkpoint_source
        assert noisy.checkpoint_source

    def test_expensive_checkpoint_not_taken(self):
        """If recovering costs more than re-executing, the checkpoint is useless."""
        wf = generators.fork_workflow(3, source_weight=1.0, sink_weights=[5, 5, 5])
        wf = wf.map_tasks(
            lambda t: t.with_costs(checkpoint_cost=50.0, recovery_cost=50.0)
            if t.index == 0
            else t
        )
        solution = solve_fork(wf, Platform.from_platform_rate(1e-2))
        assert not solution.checkpoint_source


class TestOptimality:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce(self, seed):
        wf = generators.fork_workflow(4, seed=seed, mean_weight=30.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(8e-3, downtime=1.0)
        solution = solve_fork(wf, platform)
        brute = optimal_schedule(wf, platform, checkpoint_candidates=[wf.sources[0]])
        assert solution.expected_makespan == pytest.approx(brute.expected_makespan)

    def test_solution_reports_both_candidates(self):
        wf = generators.fork_workflow(3, seed=1).with_checkpoint_costs(mode="proportional", factor=0.1)
        platform = Platform.from_platform_rate(5e-3)
        solution = solve_fork(wf, platform)
        assert solution.expected_makespan == pytest.approx(
            min(solution.makespan_with_checkpoint, solution.makespan_without_checkpoint)
        )
        assert solution.schedule.order[0] == wf.sources[0]

    def test_checkpointing_sinks_never_helps(self):
        """Sanity check of the argument that only the source matters."""
        wf = generators.fork_workflow(3, source_weight=30.0, sink_weights=[10, 20, 30]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(1e-2)
        solution = solve_fork(wf, platform)
        brute = optimal_schedule(wf, platform)  # all checkpoint subsets allowed
        assert solution.expected_makespan == pytest.approx(brute.expected_makespan)
