"""Tests for the batched NumPy Monte-Carlo engine (repro.simulation.engine_np).

The contract under test is strict: for a shared seed, the vectorized engine
and the sequential reference engine must produce **bit-for-bit identical**
makespan samples and failure counts — not merely statistically equivalent
ones.  Equality is asserted with ``==`` on floats throughout.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Platform, Schedule, run_monte_carlo
from repro.simulation import (
    ExponentialFailures,
    LogNormalFailures,
    NoFailures,
    ScriptedFailures,
    SimulationDiverged,
    WeibullFailures,
    attempt_matrix,
    failure_model_from_spec,
    replica_generators,
    simulate_batch,
    simulate_schedule,
)
from repro.workflows import generators, pegasus


@pytest.fixture
def chain():
    return generators.chain_workflow(4, weights=[10, 20, 30, 40]).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


@pytest.fixture(scope="module")
def montage_schedule():
    workflow = pegasus.montage(40, seed=5).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    from repro.heuristics import linearize

    order = linearize(workflow, "DF")
    return Schedule(workflow, order, set(order[::3]))


def both_backends(schedule, platform, **kwargs):
    python = run_monte_carlo(schedule, platform, backend="python", keep_samples=True, **kwargs)
    numpy_ = run_monte_carlo(schedule, platform, backend="numpy", keep_samples=True, **kwargs)
    return python, numpy_


class TestBitForBitEquivalence:
    def test_exponential_with_downtime(self, montage_schedule):
        platform = Platform.from_platform_rate(1e-3, downtime=5.0)
        python, numpy_ = both_backends(montage_schedule, platform, n_runs=300, rng=9)
        assert python.samples == numpy_.samples
        assert python.mean_failures == numpy_.mean_failures

    @pytest.mark.parametrize(
        "model",
        [
            WeibullFailures.from_mtbf(800.0, shape=0.6),
            LogNormalFailures.from_mtbf(800.0, sigma=1.0),
            ScriptedFailures([200.0, 100.0, 50.0, 25.0]),
            NoFailures(),
        ],
        ids=["weibull", "lognormal", "scripted", "none"],
    )
    def test_every_failure_law(self, montage_schedule, model):
        platform = Platform.from_platform_rate(1e-3, downtime=2.0)
        python, numpy_ = both_backends(
            montage_schedule, platform, n_runs=150, rng=3, failure_model=model
        )
        assert python.samples == numpy_.samples
        assert python.mean_failures == numpy_.mean_failures

    def test_checkpoint_overlap(self, montage_schedule):
        platform = Platform.from_platform_rate(1e-3)
        python, numpy_ = both_backends(
            montage_schedule, platform, n_runs=150, rng=11, checkpoint_overlap=0.5
        )
        assert python.samples == numpy_.samples

    def test_heavy_failure_regime(self, chain):
        # Several failures per run exercise the retry/restart machinery hard.
        schedule = Schedule(chain, range(4), {1, 2})
        platform = Platform.from_platform_rate(1e-2, downtime=2.0)
        python, numpy_ = both_backends(schedule, platform, n_runs=1000, rng=7)
        assert python.samples == numpy_.samples
        assert python.mean_failures == numpy_.mean_failures
        assert python.mean_failures > 1.0  # the regime really is heavy

    def test_generator_seed_and_int_seed_agree(self, chain):
        schedule = Schedule(chain, range(4), {0, 2})
        platform = Platform.from_platform_rate(5e-3)
        from_int = run_monte_carlo(
            schedule, platform, n_runs=64, rng=42, backend="numpy", keep_samples=True
        )
        from_generator = run_monte_carlo(
            schedule,
            platform,
            n_runs=64,
            rng=np.random.default_rng(42),
            backend="python",
            keep_samples=True,
        )
        assert from_int.samples == from_generator.samples

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(data=st.data())
    def test_random_dags_random_platforms(self, data):
        """Hypothesis: random DAG, schedule and platform — engines agree exactly."""
        n = data.draw(st.integers(min_value=1, max_value=8), label="n")
        weights = data.draw(
            st.lists(
                st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
                min_size=n,
                max_size=n,
            ),
            label="weights",
        )
        edge_flags = data.draw(
            st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2),
            label="edges",
        )
        from repro import Task, Workflow

        edges = []
        flag_index = 0
        for i in range(n):
            for j in range(i + 1, n):
                if edge_flags[flag_index]:
                    edges.append((i, j))
                flag_index += 1
        factor = data.draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False), label="factor")
        workflow = Workflow(
            [Task(index=i, weight=w) for i, w in enumerate(weights)], edges
        ).with_checkpoint_costs(mode="proportional", factor=factor)
        checkpoint_flags = data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n), label="ckpts"
        )
        schedule = Schedule(
            workflow, range(n), {i for i, flag in enumerate(checkpoint_flags) if flag}
        )
        rate = data.draw(st.floats(min_value=0.0, max_value=0.02, allow_nan=False), label="rate")
        downtime = data.draw(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False), label="downtime"
        )
        processors = data.draw(st.integers(min_value=1, max_value=8), label="processors")
        # The drawn rate bounds the *effective* platform rate (p x rate/p):
        # p > 1 exercises the aggregation without letting lambda * w explode
        # into simulations that need e^(lambda w) attempts to finish.
        platform = Platform(
            processors=processors,
            processor_failure_rate=rate / processors,
            downtime=downtime,
        )
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1), label="seed")
        python, numpy_ = both_backends(schedule, platform, n_runs=25, rng=seed)
        assert python.samples == numpy_.samples
        assert python.mean_failures == numpy_.mean_failures

    def test_multi_processor_platform_with_downtime(self, montage_schedule):
        """D > 0 and p > 1 together: the platform regime the scenario layer
        used to silently collapse to (D=0, p=1)."""
        platform = Platform(processors=16, processor_failure_rate=1e-4, downtime=30.0)
        python, numpy_ = both_backends(montage_schedule, platform, n_runs=400, rng=21)
        assert python.samples == numpy_.samples
        assert python.mean_failures == numpy_.mean_failures
        # p really scales the pressure: more failures than the p=1 platform.
        single = run_monte_carlo(
            Schedule(
                montage_schedule.workflow,
                montage_schedule.order,
                montage_schedule.checkpointed,
            ),
            Platform(processors=1, processor_failure_rate=1e-4, downtime=30.0),
            n_runs=400,
            rng=21,
            backend="numpy",
        )
        assert python.mean_failures > single.mean_failures


class TestSimulateBatch:
    def test_matches_reference_engine_per_replica(self, chain):
        """simulate_batch replica r == simulate_schedule with generators[r]."""
        schedule = Schedule(chain, range(4), {1})
        platform = Platform.from_platform_rate(8e-3, downtime=1.0)
        generators_ = replica_generators(5, 32)
        reference = [
            simulate_schedule(schedule, platform, rng=g) for g in replica_generators(5, 32)
        ]
        makespans, failures = simulate_batch(schedule, platform, generators_)
        assert [r.makespan for r in reference] == list(makespans)
        assert [r.n_failures for r in reference] == list(failures)

    def test_divergence_detection(self):
        workflow = generators.chain_workflow(2, weights=[1e4, 1e4]).with_checkpoint_costs(
            mode="constant", value=0.0
        )
        schedule = Schedule(workflow, (0, 1), ())
        platform = Platform.from_platform_rate(0.5)
        with pytest.raises(SimulationDiverged):
            simulate_batch(schedule, platform, replica_generators(0, 4), max_failures=50)

    def test_buffer_refill_beyond_initial_batch(self, chain):
        """Replicas that outlive the pre-sampled buffer refill correctly."""
        from repro.simulation import engine_np

        schedule = Schedule(chain, range(4), {0, 1, 2})
        platform = Platform.from_platform_rate(2e-2, downtime=0.5)
        generators_ = replica_generators(13, 50)
        makespans, failures = engine_np.simulate_batch(
            schedule, platform, replica_generators(13, 50)
        )
        # Same computation with a pathologically small buffer must agree.
        old_batch = engine_np.DEFAULT_BATCH
        engine_np.DEFAULT_BATCH = 2
        try:
            small_makespans, small_failures = engine_np.simulate_batch(
                schedule, platform, generators_
            )
        finally:
            engine_np.DEFAULT_BATCH = old_batch
        assert list(makespans) == list(small_makespans)
        assert list(failures) == list(small_failures)


class TestAttemptMatrix:
    def test_never_failed_row_is_plain_attempts(self, chain):
        schedule = Schedule(chain, range(4), {1, 3})
        matrix = attempt_matrix(schedule)
        for position_zero in range(4):
            task = chain.task(position_zero)
            expected = task.weight + (
                task.checkpoint_cost if schedule.is_checkpointed(position_zero) else 0.0
            )
            assert matrix[1, position_zero + 1] == pytest.approx(expected)

    def test_restart_row_charges_unckpt_predecessors(self, chain):
        # Restarting at position 3 (task 2) with only task 1 checkpointed:
        # the attempt must recover T1 and re-execute T0... no — T0 feeds T1
        # only, and T1 is recovered from its checkpoint, so T0 is not needed.
        schedule = Schedule(chain, range(4), {1})
        matrix = attempt_matrix(schedule)
        t1 = chain.task(1)
        t2 = chain.task(2)
        assert matrix[3, 3] == pytest.approx(t1.recovery_cost + t2.weight)

    def test_overlap_shortens_checkpoints(self, chain):
        schedule = Schedule(chain, range(4), {0, 1, 2, 3})
        blocking = attempt_matrix(schedule)
        free = attempt_matrix(schedule, checkpoint_overlap=1.0)
        assert free[1, 1:5].sum() == pytest.approx(chain.total_weight)
        assert blocking[1, 1:5].sum() == pytest.approx(
            chain.total_weight + schedule.total_checkpoint_cost
        )

    def test_rejects_bad_overlap(self, chain):
        with pytest.raises(ValueError):
            attempt_matrix(Schedule(chain, range(4), ()), checkpoint_overlap=-0.1)


class TestSampleBatch:
    @pytest.mark.parametrize(
        "model",
        [
            ExponentialFailures(rate=1e-2),
            ExponentialFailures(rate=0.0),
            WeibullFailures.from_mtbf(500.0, shape=0.7),
            LogNormalFailures.from_mtbf(300.0, sigma=0.8),
            NoFailures(),
        ],
        ids=["exponential", "exponential-zero", "weibull", "lognormal", "none"],
    )
    def test_batch_equals_repeated_scalar_draws(self, model):
        """The contract the vectorized engine rests on: bit-equal streams."""
        batch = model.sample_batch(np.random.default_rng(123), 200)
        rng = np.random.default_rng(123)
        sequential = np.array([model.sample(rng) for _ in range(200)])
        assert np.array_equal(batch, sequential)

    def test_scripted_batch_consumes_and_pads(self):
        model = ScriptedFailures([5.0, 3.0, 8.0])
        rng = np.random.default_rng(0)
        first = model.sample_batch(rng, 2)
        assert list(first) == [5.0, 3.0]
        second = model.sample_batch(rng, 4)
        assert second[0] == 8.0
        assert all(math.isinf(x) for x in second[1:])
        assert model.batch_hint() == 4

    def test_base_class_fallback_loops_over_sample(self):
        from repro.simulation.failures import FailureModel

        class EveryTen(FailureModel):
            def sample(self, rng):
                return 10.0

            @property
            def mean_time_between_failures(self):
                return 10.0

            def spec(self):
                return {"law": "every-ten"}

        batch = EveryTen().sample_batch(np.random.default_rng(0), 5)
        assert batch.dtype == np.float64
        assert list(batch) == [10.0] * 5


class TestFailureSpecs:
    @pytest.mark.parametrize(
        "model",
        [
            ExponentialFailures(rate=2e-3),
            WeibullFailures(scale=900.0, shape=0.7),
            LogNormalFailures(mu=6.0, sigma=1.1),
            ScriptedFailures([4.0, 2.0]),
            NoFailures(),
        ],
        ids=["exponential", "weibull", "lognormal", "scripted", "none"],
    )
    def test_spec_round_trips(self, model):
        rebuilt = failure_model_from_spec(model.spec())
        assert type(rebuilt) is type(model)
        assert rebuilt.spec() == model.spec()
        assert rebuilt.mean_time_between_failures == pytest.approx(
            model.mean_time_between_failures
        )

    def test_rejects_unknown_law(self):
        with pytest.raises(ValueError):
            failure_model_from_spec({"law": "gamma"})

    def test_rejects_malformed_spec(self):
        with pytest.raises(ValueError):
            failure_model_from_spec({"rate": 1e-3})
        with pytest.raises(ValueError):
            failure_model_from_spec({"law": "weibull", "slope": 2.0})


class TestReplicaGenerators:
    def test_deterministic_for_int_seed(self):
        a = replica_generators(7, 5)
        b = replica_generators(7, 5)
        assert [g.exponential(1.0) for g in a] == [g.exponential(1.0) for g in b]

    def test_replicas_are_independent_of_count(self):
        """Replica r's stream does not depend on how many replicas follow it."""
        few = replica_generators(3, 2)
        many = replica_generators(3, 10)
        assert [g.exponential(1.0) for g in few] == [g.exponential(1.0) for g in many[:2]]


class TestBackendSelection:
    def test_auto_uses_numpy_for_large_batches(self, chain):
        schedule = Schedule(chain, range(4), {1})
        platform = Platform.from_platform_rate(1e-3)
        auto = run_monte_carlo(schedule, platform, n_runs=64, rng=5, keep_samples=True)
        explicit = run_monte_carlo(
            schedule, platform, n_runs=64, rng=5, keep_samples=True, backend="numpy"
        )
        assert auto.samples == explicit.samples

    def test_unknown_backend_rejected(self, chain):
        schedule = Schedule(chain, range(4), ())
        with pytest.raises(ValueError):
            run_monte_carlo(schedule, Platform.failure_free(), n_runs=4, backend="fortran")
