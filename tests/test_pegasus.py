"""Tests for the Pegasus-like scientific workflow generators."""

from __future__ import annotations

import pytest

from repro.workflows import pegasus
from repro.workflows.pegasus import AVERAGE_TASK_WEIGHTS, WORKFLOW_FAMILIES


ALL_FAMILIES = list(WORKFLOW_FAMILIES)


class TestBuilderValidation:
    """Regression: _Builder.add used to clamp non-positive weights to 1e-6,
    silently masking generator bugs instead of surfacing them."""

    def _builder(self):
        import numpy as np

        return pegasus._Builder(np.random.default_rng(0))

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_weight_raises_instead_of_clamping(self, weight):
        builder = self._builder()
        with pytest.raises(ValueError, match="invalid weight"):
            builder.add("mProjectPP", weight)
        assert builder.tasks == []  # nothing was silently added

    def test_valid_weight_is_kept_verbatim(self):
        builder = self._builder()
        index = builder.add("mProjectPP", 12.5)
        assert builder.tasks[index].weight == 12.5


class TestCommonProperties:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    @pytest.mark.parametrize("n_tasks", [50, 120, 300])
    def test_size_close_to_requested(self, family, n_tasks):
        wf = pegasus.generate(family, n_tasks, seed=1)
        assert abs(wf.n_tasks - n_tasks) <= max(4, 0.1 * n_tasks)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_is_a_connected_dag_with_positive_weights(self, family):
        wf = pegasus.generate(family, 80, seed=2)
        assert wf.n_edges >= wf.n_tasks - 1
        assert all(t.weight > 0 for t in wf.tasks)
        # No isolated task: everything participates in a dependency.
        for i in range(wf.n_tasks):
            assert wf.in_degree(i) + wf.out_degree(i) > 0

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_average_weight_matches_paper(self, family):
        wf = pegasus.generate(family, 150, seed=3)
        mean = wf.total_weight / wf.n_tasks
        assert mean == pytest.approx(AVERAGE_TASK_WEIGHTS[family], rel=1e-6)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_deterministic_given_seed(self, family):
        assert pegasus.generate(family, 60, seed=5) == pegasus.generate(family, 60, seed=5)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_different_seeds_differ(self, family):
        assert pegasus.generate(family, 60, seed=5) != pegasus.generate(family, 60, seed=6)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_checkpoint_costs_initially_zero(self, family):
        wf = pegasus.generate(family, 50, seed=1)
        assert all(t.checkpoint_cost == 0.0 for t in wf.tasks)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            pegasus.generate("blast", 50)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_too_small_rejected(self, family):
        with pytest.raises(ValueError):
            pegasus.generate(family, 3)


class TestMontageStructure:
    def test_has_expected_task_types(self):
        wf = pegasus.montage(100, seed=1)
        categories = {t.category for t in wf.tasks}
        assert {"mProjectPP", "mDiffFit", "mConcatFit", "mBgModel", "mBackground", "mAdd"} <= categories

    def test_diff_fit_consumes_two_projections(self):
        wf = pegasus.montage(100, seed=1)
        diffs = [t.index for t in wf.tasks if t.category == "mDiffFit"]
        assert diffs
        assert all(1 <= wf.in_degree(i) <= 2 for i in diffs)

    def test_concat_fit_is_a_synchronisation_point(self):
        wf = pegasus.montage(100, seed=1)
        concat = [t.index for t in wf.tasks if t.category == "mConcatFit"]
        assert len(concat) == 1
        n_diff = sum(1 for t in wf.tasks if t.category == "mDiffFit")
        assert wf.in_degree(concat[0]) == n_diff


class TestCyberShakeStructure:
    def test_has_expected_task_types(self):
        wf = pegasus.cybershake(100, seed=1)
        categories = {t.category for t in wf.tasks}
        assert {"ExtractSGT", "SeismogramSynthesis", "ZipSeismograms", "PeakValCalcOkaya", "ZipPSA"} <= categories

    def test_synthesis_depends_on_one_extract(self):
        wf = pegasus.cybershake(100, seed=1)
        synth = [t.index for t in wf.tasks if t.category == "SeismogramSynthesis"]
        assert synth
        extracts = {t.index for t in wf.tasks if t.category == "ExtractSGT"}
        for i in synth:
            preds = set(wf.predecessors(i))
            assert len(preds) == 1 and preds <= extracts


class TestLigoStructure:
    def test_has_expected_task_types(self):
        wf = pegasus.ligo(120, seed=1)
        categories = {t.category for t in wf.tasks}
        assert {"TmpltBank", "Inspiral", "Thinca", "TrigBank"} <= categories

    def test_thinca_tasks_synchronise_groups(self):
        wf = pegasus.ligo(120, seed=1)
        thincas = [t.index for t in wf.tasks if t.category == "Thinca"]
        assert len(thincas) >= 2
        assert all(wf.in_degree(i) >= 2 for i in thincas)


class TestGenomeStructure:
    def test_has_expected_task_types(self):
        wf = pegasus.genome(80, seed=1)
        categories = {t.category for t in wf.tasks}
        assert {"fastQSplit", "filterContams", "sol2sanger", "fastq2bfq", "map", "mapMerge", "pileup"} <= categories

    def test_pipeline_chains_within_lanes(self):
        wf = pegasus.genome(80, seed=1)
        sol = [t.index for t in wf.tasks if t.category == "sol2sanger"]
        assert sol
        for i in sol:
            preds = [wf.task(p).category for p in wf.predecessors(i)]
            assert preds == ["filterContams"]

    def test_genome_alias(self):
        assert pegasus.genome is pegasus.epigenomics

    def test_heaviest_family(self):
        genome = pegasus.genome(60, seed=2)
        montage = pegasus.montage(60, seed=2)
        assert genome.total_weight / genome.n_tasks > 10 * montage.total_weight / montage.n_tasks
