"""Sanitizer-hardened native kernel (``REPRO_NATIVE_SANITIZE``).

Three layers of coverage:

* knob semantics — validation, the mutually-exclusive asan/tsan pair, the
  object-cache key separating sanitized from plain builds, and the
  refuse-up-front guards (dlopen of an ASan library without its runtime
  preloaded *aborts the process*, so ``native_available()`` must say no
  before trying);
* in-process instrumented runs — the UBSan build loads via ctypes and must
  agree with the pure-Python reference (any UBSan diagnostic aborts, so
  agreement doubles as "no undefined behaviour on this instance"); the
  ASan build does the same in a subprocess with the runtime preloaded;
* the ThreadSanitizer pass — TSan's runtime cannot be injected into
  CPython, so the OpenMP row fill is exercised by a standalone C driver
  compiled against the real ``_theorem3.c`` with ``-fsanitize=thread``;
  the driver also pins the determinism contract (threads=1 and threads=8
  produce bit-identical output).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core import evaluator_native as nat
from repro.core.evaluator_native import (
    NativeBuildError,
    _build_key,
    _sanitizers,
    invalidate_probe_cache,
    native_available,
    native_unavailable_reason,
)

SOURCE = Path(nat.__file__).with_name("_theorem3.c")

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no C toolchain: native backend unavailable"
)


@pytest.fixture
def fresh_probe(monkeypatch, tmp_path):
    """Isolate the build probe: private object cache, reset memo both ways."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "native-cache"))
    invalidate_probe_cache()
    yield monkeypatch
    invalidate_probe_cache()


# ----------------------------------------------------------------------
# Knob semantics
# ----------------------------------------------------------------------
def test_sanitize_knob_empty_and_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
    assert _sanitizers() == ()
    monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "ubsan")
    assert _sanitizers() == ("ubsan",)
    # deduplicated, order-insensitive, whitespace-tolerant
    monkeypatch.setenv("REPRO_NATIVE_SANITIZE", " ubsan , asan,ubsan ")
    assert _sanitizers() == ("asan", "ubsan")


def test_sanitize_knob_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "asan,msan")
    with pytest.raises(NativeBuildError, match="unknown sanitizer"):
        _sanitizers()


def test_sanitize_knob_rejects_asan_tsan_combination(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "tsan,asan")
    with pytest.raises(NativeBuildError, match="cannot be combined"):
        _sanitizers()


def test_build_key_separates_sanitizer_sets():
    source = b"int x;"
    keys = {
        _build_key("cc", ["-O3"], source, sanitizers)
        for sanitizers in ((), ("asan",), ("ubsan",), ("asan", "ubsan"))
    }
    assert len(keys) == 4, "sanitized and plain builds must never collide"


def test_unknown_sanitizer_degrades_gracefully(fresh_probe):
    fresh_probe.setenv("REPRO_NATIVE_SANITIZE", "bogus")
    invalidate_probe_cache()
    assert not native_available()
    assert "unknown sanitizer" in (native_unavailable_reason() or "")


def test_asan_refused_without_preloaded_runtime(fresh_probe):
    if "libasan" in Path("/proc/self/maps").read_text():
        pytest.skip("ASan runtime already present in this process")
    fresh_probe.setenv("REPRO_NATIVE_SANITIZE", "asan")
    fresh_probe.delenv("LD_PRELOAD", raising=False)
    invalidate_probe_cache()
    assert not native_available()
    assert "LD_PRELOAD" in (native_unavailable_reason() or "")


def test_tsan_refused_in_process(fresh_probe):
    fresh_probe.setenv("REPRO_NATIVE_SANITIZE", "tsan")
    invalidate_probe_cache()
    assert not native_available()
    assert "standalone driver" in (native_unavailable_reason() or "")


# ----------------------------------------------------------------------
# Instrumented in-process runs
# ----------------------------------------------------------------------
def _sanitizer_runtime(name: str) -> Path | None:
    """Absolute path of the compiler's sanitizer runtime, if it exists."""
    cc = shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        return None
    proc = subprocess.run(
        [cc, f"-print-file-name=lib{name}.so"], capture_output=True, text=True
    )
    candidate = Path(proc.stdout.strip())
    return candidate if candidate.is_absolute() and candidate.exists() else None


#: Evaluates one deterministic instance on the native backend and compares
#: it against the pure-Python reference; exits nonzero on disagreement.
#: Run both in this process (ubsan) and under an ASan preload (subprocess).
_EQUIVALENCE_SNIPPET = textwrap.dedent(
    """
    import math
    from repro import Platform, Schedule, Task, Workflow, evaluate_schedule
    from repro.core.evaluator_native import load_kernels

    kernels = load_kernels()
    tasks = [Task(index=i, weight=3.0 + i, checkpoint_cost=1.0 + 0.25 * i,
                  recovery_cost=0.5 + 0.125 * i) for i in range(10)]
    edges = [(i, i + 1) for i in range(9)] + [(0, 5), (2, 7)]
    wf = Workflow(tasks=tuple(tasks), edges=edges)
    sched = Schedule(workflow=wf, order=tuple(range(10)),
                     checkpointed=frozenset({1, 4, 8}))
    platform = Platform(processors=1, processor_failure_rate=0.01,
                        downtime=2.0)
    native = evaluate_schedule(sched, platform, backend="native")
    python = evaluate_schedule(sched, platform, backend="python")
    rel = abs(native.expected_makespan - python.expected_makespan) / (
        python.expected_makespan or 1.0
    )
    assert rel < 1e-9, (native.expected_makespan, python.expected_makespan)
    print("equivalence-ok", sorted(kernels.sanitizers))
    """
)


def test_ubsan_build_loads_and_agrees(fresh_probe):
    """UBSan instruments in-process: agreement implies no UB diagnostics
    fired (``-fno-sanitize-recover`` would have aborted)."""
    fresh_probe.setenv("REPRO_NATIVE_SANITIZE", "ubsan")
    invalidate_probe_cache()
    assert native_available(), native_unavailable_reason()
    scope: dict = {}
    exec(_EQUIVALENCE_SNIPPET, scope)  # aborts or raises on any violation


def test_asan_build_agrees_under_preload(fresh_probe, tmp_path):
    runtime = _sanitizer_runtime("asan")
    if runtime is None:
        pytest.skip("no libasan runtime on this toolchain")
    env = dict(os.environ)
    env.update(
        {
            "REPRO_NATIVE_SANITIZE": "asan",
            "REPRO_NATIVE_CACHE": str(tmp_path / "asan-cache"),
            "LD_PRELOAD": str(runtime),
            # CPython's arenas look like leaks at exit; everything else
            # (overflows, use-after-free) still aborts loudly.
            "ASAN_OPTIONS": "detect_leaks=0",
        }
    )
    proc = subprocess.run(
        [sys.executable, "-c", _EQUIVALENCE_SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "equivalence-ok ['asan']" in proc.stdout
    assert "ERROR: AddressSanitizer" not in proc.stderr


# ----------------------------------------------------------------------
# ThreadSanitizer: standalone driver over the OpenMP row fill
# ----------------------------------------------------------------------
#: A self-contained harness for ``repro_fill_rows``: a chain-plus-shortcuts
#: instance small enough to embed but wide enough that the
#: ``schedule(dynamic, 16)`` loop actually spreads rows across threads.
#: Prints one checksum line; any data race is TSan's to report.
_TSAN_DRIVER = textwrap.dedent(
    """
    #include <stdint.h>
    #include <stdio.h>
    #include <stdlib.h>
    #include <string.h>

    void repro_fill_rows(
        int64_t n_rows, const int64_t *rows, int64_t words,
        const uint64_t *fwords, const uint64_t *cwords,
        const int64_t *cand_ptr, const int64_t *cand_idx,
        const int64_t *pred_ptr, const int64_t *pred_idx,
        const double *charges, double *loss_t, int64_t n1,
        int64_t *out_cols, double *out_vals, const int64_t *out_off,
        int64_t *out_counts, int64_t threads);

    enum { N = 48, WORDS = 1 };

    int main(int argc, char **argv) {
        int64_t threads = argc > 1 ? strtoll(argv[1], NULL, 10) : 1;
        int64_t n = N, n1 = N + 1;

        /* every task's single predecessor is task 0, so every candidate
         * takes the precomputed-frontier path and each candidate of a row
         * charges exactly one fresh bit -- n-k+1 output entries per row,
         * maximising concurrent writes into the shared output arrays */
        int64_t pred_ptr[N + 2], pred_idx[N + 1];
        for (int64_t i = 0; i <= n; i++) {
            pred_ptr[i] = i;
            pred_idx[i] = 0;
        }
        pred_ptr[n + 1] = n + 1;

        /* row k considers candidates i = k..n */
        int64_t cand_ptr[N + 2];
        int64_t *cand_idx = malloc(sizeof(int64_t) * N * (N + 1));
        int64_t pos = 0;
        cand_ptr[0] = 0;
        for (int64_t k = 1; k <= n; k++) {
            cand_ptr[k] = pos;
            for (int64_t i = k; i <= n; i++)
                cand_idx[pos++] = i;
        }
        cand_ptr[n + 1] = pos;

        uint64_t fwords[N + 1], cwords[N + 1];
        for (int64_t i = 0; i <= n; i++) {
            fwords[i] = i >= 64 ? ~0ULL : ((1ULL << i) - 1);
            cwords[i] = i + 1 >= 64 ? ~0ULL : ((1ULL << (i + 1)) - 1);
        }

        double charges[WORDS * 64];
        for (int b = 0; b < WORDS * 64; b++)
            charges[b] = 0.5 * (double)(b + 1);

        double *loss_t = calloc((size_t)(n + 1) * (size_t)n1, sizeof(double));
        int64_t rows[N];
        for (int64_t r = 0; r < n; r++)
            rows[r] = r + 1;

        int64_t *out_cols = malloc(sizeof(int64_t) * N * (N + 1));
        double *out_vals = malloc(sizeof(double) * N * (N + 1));
        int64_t out_off[N], out_counts[N];
        for (int64_t r = 0; r < n; r++)
            out_off[r] = r * (n + 1);

        repro_fill_rows(n, rows, WORDS, fwords, cwords, cand_ptr, cand_idx,
                        pred_ptr, pred_idx, charges, loss_t, n1, out_cols,
                        out_vals, out_off, out_counts, threads);

        double checksum = 0.0;
        int64_t entries = 0;
        for (int64_t r = 0; r < n; r++) {
            entries += out_counts[r];
            for (int64_t j = 0; j < out_counts[r]; j++)
                checksum += out_vals[out_off[r] + j]
                            * (double)(out_cols[out_off[r] + j] + 1);
        }
        for (int64_t i = 0; i <= n; i++)
            for (int64_t k = 0; k < n1; k++)
                checksum += loss_t[i * n1 + k];
        printf("entries=%lld checksum=%.17g\\n",
               (long long)entries, checksum);
        free(cand_idx); free(loss_t); free(out_cols); free(out_vals);
        return 0;
    }
    """
)


def _compile_tsan_driver(tmp_path: Path) -> Path | None:
    cc = shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        return None
    driver_c = tmp_path / "tsan_driver.c"
    driver_c.write_text(_TSAN_DRIVER, encoding="utf-8")
    binary = tmp_path / "tsan_driver"
    proc = subprocess.run(
        [
            cc,
            "-O1",
            "-g",
            "-fopenmp",
            "-fsanitize=thread",
            str(driver_c),
            str(SOURCE),
            "-lm",
            "-o",
            str(binary),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        return None  # toolchain lacks libtsan (or OpenMP): skip
    return binary


#: GCC's libgomp is not TSan-instrumented: the implicit barrier ending a
#: parallel region is invisible to TSan, so the *driver main's* post-region
#: reads of the output arrays are reported as racing with worker writes.
#: Suppressing frames in ``main`` removes exactly that false positive —
#: a real race inside the fill (worker vs worker, e.g. shared scratch or
#: overlapping output slices) involves only ``repro_fill_rows._omp_fn`` /
#: ``fill_one_row`` frames and still aborts the run.
_TSAN_SUPPRESSIONS = "race:main\n"


def test_tsan_openmp_fill_is_race_free_and_deterministic(tmp_path):
    binary = _compile_tsan_driver(tmp_path)
    if binary is None:
        pytest.skip("toolchain cannot build with -fsanitize=thread -fopenmp")
    suppressions = tmp_path / "tsan.supp"
    suppressions.write_text(_TSAN_SUPPRESSIONS, encoding="utf-8")
    outputs = {}
    for threads in (1, 8):
        proc = subprocess.run(
            [str(binary), str(threads)],
            capture_output=True,
            text=True,
            timeout=300,
            env={
                **os.environ,
                "TSAN_OPTIONS": (
                    f"suppressions={suppressions} halt_on_error=1"
                ),
            },
        )
        assert proc.returncode == 0, (
            f"threads={threads}: rc={proc.returncode}\n{proc.stderr}"
        )
        assert "WARNING: ThreadSanitizer" not in proc.stderr, proc.stderr
        outputs[threads] = proc.stdout.strip()
    assert outputs[1] == outputs[8], (
        "thread count changed the fill output — the rows-are-independent "
        f"contract is broken: {outputs}"
    )
    assert outputs[1].startswith("entries=")
