"""Tests for JSON serialization of workflows and schedules."""

from __future__ import annotations

import json

import pytest

from repro import Schedule
from repro.workflows import (
    load_schedule,
    load_workflow,
    save_schedule,
    save_workflow,
    schedule_from_dict,
    schedule_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.workflows import generators, pegasus


@pytest.fixture
def workflow():
    return pegasus.montage(30, seed=9).with_checkpoint_costs(mode="proportional", factor=0.1)


@pytest.fixture
def schedule(workflow):
    order = workflow.topological_order()
    return Schedule(workflow, order, set(order[::3]))


class TestWorkflowRoundTrip:
    def test_dict_round_trip(self, workflow):
        data = workflow_to_dict(workflow)
        back = workflow_from_dict(data)
        assert back == workflow
        assert back.name == workflow.name

    def test_dict_is_json_serialisable(self, workflow):
        json.dumps(workflow_to_dict(workflow))

    def test_file_round_trip(self, workflow, tmp_path):
        path = save_workflow(workflow, tmp_path / "wf.json")
        assert path.exists()
        assert load_workflow(path) == workflow

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            workflow_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, workflow):
        data = workflow_to_dict(workflow)
        data["version"] = 999
        with pytest.raises(ValueError):
            workflow_from_dict(data)

    def test_preserves_task_attributes(self, workflow):
        back = workflow_from_dict(workflow_to_dict(workflow))
        for original, restored in zip(workflow.tasks, back.tasks):
            assert restored.weight == pytest.approx(original.weight)
            assert restored.checkpoint_cost == pytest.approx(original.checkpoint_cost)
            assert restored.recovery_cost == pytest.approx(original.recovery_cost)
            assert restored.category == original.category

    def test_tasks_out_of_order_in_payload(self):
        wf = generators.chain_workflow(3, weights=[1, 2, 3])
        data = workflow_to_dict(wf)
        data["tasks"] = list(reversed(data["tasks"]))
        assert workflow_from_dict(data) == wf


class TestScheduleRoundTrip:
    def test_dict_round_trip_with_embedded_workflow(self, schedule):
        data = schedule_to_dict(schedule)
        back = schedule_from_dict(data)
        assert back.order == schedule.order
        assert back.checkpointed == schedule.checkpointed
        assert back.workflow == schedule.workflow

    def test_dict_round_trip_with_external_workflow(self, schedule, workflow):
        data = schedule_to_dict(schedule, include_workflow=False)
        assert "workflow" not in data
        back = schedule_from_dict(data, workflow=workflow)
        assert back.order == schedule.order

    def test_missing_workflow_rejected(self, schedule):
        data = schedule_to_dict(schedule, include_workflow=False)
        with pytest.raises(ValueError):
            schedule_from_dict(data)

    def test_file_round_trip(self, schedule, tmp_path):
        path = save_schedule(schedule, tmp_path / "sched.json")
        back = load_schedule(path)
        assert back.order == schedule.order
        assert back.checkpointed == schedule.checkpointed

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            schedule_from_dict({"format": "nope"})
