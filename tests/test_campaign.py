"""Tests for multi-seed campaigns and aggregation."""

from __future__ import annotations

import pytest

from repro.experiments import Scenario
from repro.experiments.campaign import aggregate_rows, run_campaign


HEURISTICS = ("DF-CkptW", "DF-CkptNvr")


@pytest.fixture(scope="module")
def campaign():
    scenario = Scenario(
        family="montage",
        n_tasks=20,
        failure_rate=1e-3,
        heuristics=HEURISTICS,
        label="campaign-test",
    )
    return run_campaign([scenario], seeds=(0, 1, 2), search_mode="geometric", max_candidates=6)


class TestRunCampaign:
    def test_row_count(self, campaign):
        assert len(campaign.rows) == 3 * len(HEURISTICS)
        assert {row.seed for row in campaign.rows} == {0, 1, 2}

    def test_aggregation_one_entry_per_heuristic(self, campaign):
        assert len(campaign.aggregated) == len(HEURISTICS)
        for entry in campaign.aggregated:
            assert entry.n_seeds == 3
            assert entry.min_ratio <= entry.mean_ratio <= entry.max_ratio
            assert entry.std_ratio >= 0.0
            assert entry.sem_ratio == pytest.approx(entry.std_ratio / 3 ** 0.5)

    def test_ranking_and_best(self, campaign):
        ranking = campaign.ranking("montage", 20)
        assert [entry.heuristic for entry in ranking][0] == campaign.best_heuristic("montage", 20)
        ratios = [entry.mean_ratio for entry in ranking]
        assert ratios == sorted(ratios)
        # The searchful heuristic cannot lose to never-checkpointing on average.
        assert campaign.best_heuristic("montage", 20) == "DF-CkptW"

    def test_best_heuristic_unknown_point(self, campaign):
        with pytest.raises(KeyError):
            campaign.best_heuristic("montage", 999)

    def test_render(self, campaign):
        text = campaign.render()
        assert "montage" in text
        assert "DF-CkptW" in text
        assert len(text.splitlines()) == 1 + len(HEURISTICS)

    def test_requires_at_least_one_seed(self):
        scenario = Scenario(family="montage", n_tasks=20, failure_rate=1e-3, heuristics=HEURISTICS)
        with pytest.raises(ValueError):
            run_campaign([scenario], seeds=())


class TestAggregateRows:
    def test_single_row_statistics(self, campaign):
        single = aggregate_rows(campaign.rows[:1])
        assert len(single) == 1
        entry = single[0]
        assert entry.n_seeds == 1
        assert entry.std_ratio == 0.0
        assert entry.mean_ratio == pytest.approx(campaign.rows[0].overhead_ratio)

    def test_groups_by_heuristic(self, campaign):
        aggregated = aggregate_rows(campaign.rows)
        assert {entry.heuristic for entry in aggregated} == set(HEURISTICS)

    def test_empty(self):
        assert aggregate_rows([]) == ()
