"""Tests for multi-seed campaigns and aggregation."""

from __future__ import annotations

import pytest

from repro.experiments import Scenario
from repro.experiments.campaign import aggregate_rows, run_campaign


HEURISTICS = ("DF-CkptW", "DF-CkptNvr")


@pytest.fixture(scope="module")
def campaign():
    scenario = Scenario(
        family="montage",
        n_tasks=20,
        failure_rate=1e-3,
        heuristics=HEURISTICS,
        label="campaign-test",
    )
    return run_campaign([scenario], seeds=(0, 1, 2), search_mode="geometric", max_candidates=6)


class TestRunCampaign:
    def test_row_count(self, campaign):
        assert len(campaign.rows) == 3 * len(HEURISTICS)
        assert {row.seed for row in campaign.rows} == {0, 1, 2}

    def test_aggregation_one_entry_per_heuristic(self, campaign):
        assert len(campaign.aggregated) == len(HEURISTICS)
        for entry in campaign.aggregated:
            assert entry.n_seeds == 3
            assert entry.min_ratio <= entry.mean_ratio <= entry.max_ratio
            assert entry.std_ratio >= 0.0
            assert entry.sem_ratio == pytest.approx(entry.std_ratio / 3 ** 0.5)

    def test_ranking_and_best(self, campaign):
        ranking = campaign.ranking("montage", 20)
        assert [entry.heuristic for entry in ranking][0] == campaign.best_heuristic("montage", 20)
        ratios = [entry.mean_ratio for entry in ranking]
        assert ratios == sorted(ratios)
        # The searchful heuristic cannot lose to never-checkpointing on average.
        assert campaign.best_heuristic("montage", 20) == "DF-CkptW"

    def test_best_heuristic_unknown_point(self, campaign):
        with pytest.raises(KeyError):
            campaign.best_heuristic("montage", 999)

    def test_render(self, campaign):
        text = campaign.render()
        assert "montage" in text
        assert "DF-CkptW" in text
        assert len(text.splitlines()) == 1 + len(HEURISTICS)

    def test_requires_at_least_one_seed(self):
        scenario = Scenario(family="montage", n_tasks=20, failure_rate=1e-3, heuristics=HEURISTICS)
        with pytest.raises(ValueError):
            run_campaign([scenario], seeds=())


class TestPlatformAxes:
    @pytest.fixture(scope="class")
    def platform_campaign(self):
        base = Scenario(
            family="montage", n_tasks=15, failure_rate=1e-3,
            heuristics=("DF-CkptW",), label="platform-campaign",
        )
        scenarios = [
            base,
            base.with_updates(downtime=60.0),
            base.with_updates(processors=8),
        ]
        return run_campaign(scenarios, seeds=(0, 1), search_mode="geometric",
                            max_candidates=5)

    def test_platform_points_aggregate_separately(self, platform_campaign):
        # One aggregate per (platform point, heuristic) — D and p are part
        # of the grouping key, so distinct points are never averaged.
        assert len(platform_campaign.aggregated) == 3
        points = {(a.downtime, a.processors) for a in platform_campaign.aggregated}
        assert points == {(0.0, 1), (60.0, 1), (0.0, 8)}

    def test_downtime_point_costs_more(self, platform_campaign):
        by_point = {(a.downtime, a.processors): a for a in platform_campaign.aggregated}
        assert by_point[(60.0, 1)].mean_ratio > by_point[(0.0, 1)].mean_ratio
        assert by_point[(0.0, 8)].mean_ratio > by_point[(0.0, 1)].mean_ratio

    def test_render_grows_platform_columns(self, platform_campaign):
        text = platform_campaign.render()
        header = text.splitlines()[0].split()
        assert "D" in header and "p" in header
        assert len(text.splitlines()) == 1 + 3

    def test_ranking_filters_by_platform_point(self, platform_campaign):
        all_points = platform_campaign.ranking("montage", 15)
        assert len(all_points) == 3
        only_downtime = platform_campaign.ranking("montage", 15, downtime=60.0)
        assert len(only_downtime) == 1
        assert only_downtime[0].downtime == 60.0
        only_procs = platform_campaign.ranking("montage", 15, processors=8)
        assert len(only_procs) == 1 and only_procs[0].processors == 8

    def test_default_render_has_no_platform_columns(self, campaign):
        header = campaign.render().splitlines()[0].split()
        assert "D" not in header and "p" not in header


class TestAggregateRows:
    def test_single_row_statistics(self, campaign):
        single = aggregate_rows(campaign.rows[:1])
        assert len(single) == 1
        entry = single[0]
        assert entry.n_seeds == 1
        assert entry.std_ratio == 0.0
        assert entry.mean_ratio == pytest.approx(campaign.rows[0].overhead_ratio)

    def test_groups_by_heuristic(self, campaign):
        aggregated = aggregate_rows(campaign.rows)
        assert {entry.heuristic for entry in aggregated} == set(HEURISTICS)

    def test_empty(self):
        assert aggregate_rows([]) == ()
