"""Tests for greedy construction and local-search refinement of checkpoint sets."""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, evaluate_schedule, solve_heuristic
from repro.heuristics import (
    greedy_checkpoint_selection,
    linearize,
    local_search_checkpoints,
    refine_schedule,
)
from repro.theory import optimal_checkpoints_for_order, solve_chain
from repro.workflows import generators, pegasus


@pytest.fixture
def chain():
    return generators.chain_workflow(8, seed=2, mean_weight=50.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


@pytest.fixture
def platform():
    return Platform.from_platform_rate(5e-3, downtime=2.0)


class TestGreedySelection:
    def test_never_worse_than_empty_set(self, chain, platform):
        result = greedy_checkpoint_selection(chain, range(8), platform)
        empty = evaluate_schedule(Schedule(chain, range(8), ()), platform).expected_makespan
        assert result.expected_makespan <= empty + 1e-9
        assert result.initial_expected_makespan == pytest.approx(empty)
        assert result.improvement >= 0.0

    def test_failure_free_platform_selects_nothing(self, chain):
        result = greedy_checkpoint_selection(chain, range(8), Platform.failure_free())
        assert result.schedule.n_checkpointed == 0
        assert result.steps == 0

    def test_respects_budget(self, chain, platform):
        result = greedy_checkpoint_selection(chain, range(8), platform, max_checkpoints=2)
        assert result.schedule.n_checkpointed <= 2
        assert result.steps <= 2

    def test_respects_candidate_restriction(self, chain, platform):
        result = greedy_checkpoint_selection(chain, range(8), platform, candidates=[1, 3])
        assert result.schedule.checkpointed <= {1, 3}

    def test_matches_optimum_on_small_chain(self, platform):
        wf = generators.chain_workflow(6, seed=4, mean_weight=60.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        greedy = greedy_checkpoint_selection(wf, range(6), platform)
        brute = optimal_checkpoints_for_order(wf, platform, range(6))
        # Greedy is not guaranteed optimal in general, but on these small chains
        # it should land within 2% of the exhaustive optimum.
        assert greedy.expected_makespan <= brute.expected_makespan * 1.02

    def test_counts_evaluator_calls(self, chain, platform):
        result = greedy_checkpoint_selection(chain, range(8), platform)
        # One initial evaluation plus at most n per accepted step (+ final sweep).
        assert result.evaluations >= result.steps
        assert result.evaluations <= 1 + (result.steps + 1) * chain.n_tasks


class TestLocalSearch:
    def test_never_degrades_any_heuristic_schedule(self, platform):
        wf = pegasus.cybershake(30, seed=5).with_checkpoint_costs(mode="proportional", factor=0.1)
        plat = Platform.from_platform_rate(1e-3)
        for heuristic in ("DF-CkptNvr", "DF-CkptAlws", "DF-CkptPer", "DF-CkptW"):
            start = solve_heuristic(wf, plat, heuristic, counts=[3, 10, 20]).schedule
            start_value = evaluate_schedule(start, plat).expected_makespan
            refined = local_search_checkpoints(start, plat)
            assert refined.expected_makespan <= start_value + 1e-9
            assert refined.initial_expected_makespan == pytest.approx(start_value)

    def test_reaches_local_optimum(self, chain, platform):
        start = Schedule(chain, range(8), ())
        refined = local_search_checkpoints(start, platform)
        # At a local optimum, no single toggle improves the makespan.
        base = refined.expected_makespan
        for task in range(chain.n_tasks):
            toggled = (
                refined.schedule.checkpointed - {task}
                if task in refined.schedule.checkpointed
                else refined.schedule.checkpointed | {task}
            )
            value = evaluate_schedule(
                Schedule(chain, range(8), toggled), platform
            ).expected_makespan
            assert value >= base - 1e-9

    def test_removes_harmful_checkpoints(self, chain):
        """Starting from CkptAlws on a failure-free platform, everything is removed."""
        start = Schedule(chain, range(8), range(8))
        refined = local_search_checkpoints(start, Platform.failure_free())
        assert refined.schedule.n_checkpointed == 0
        assert refined.expected_makespan == pytest.approx(chain.total_weight)

    def test_max_steps_limits_work(self, chain):
        start = Schedule(chain, range(8), range(8))
        refined = local_search_checkpoints(start, Platform.failure_free(), max_steps=3)
        assert refined.steps <= 3
        assert refined.schedule.n_checkpointed >= 5

    def test_matches_chain_optimum_from_heuristic_start(self, platform):
        wf = generators.chain_workflow(7, seed=9, mean_weight=40.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        optimum = solve_chain(wf, platform).expected_makespan
        start = solve_heuristic(wf, platform, "DF-CkptPer").schedule
        refined = local_search_checkpoints(start, platform)
        assert refined.expected_makespan <= optimum * 1.02

    def test_refine_schedule_wrapper(self, chain, platform):
        start = Schedule(chain, range(8), ())
        refined = refine_schedule(start, platform)
        assert evaluate_schedule(refined, platform).expected_makespan <= evaluate_schedule(
            start, platform
        ).expected_makespan + 1e-9

    def test_candidate_restriction(self, chain, platform):
        start = Schedule(chain, range(8), ())
        refined = local_search_checkpoints(start, platform, candidates=[0, 1])
        assert refined.schedule.checkpointed <= {0, 1}


class TestRefinementOnGeneralDags:
    def test_improves_or_matches_ckptw_on_montage(self):
        wf = pegasus.montage(40, seed=8).with_checkpoint_costs(mode="proportional", factor=0.1)
        platform = Platform.from_platform_rate(1e-3)
        order = linearize(wf, "DF")
        heuristic = solve_heuristic(wf, platform, "DF-CkptW", counts=[5, 10, 20, 35])
        refined = local_search_checkpoints(heuristic.schedule, platform)
        assert refined.expected_makespan <= heuristic.expected_makespan + 1e-9
        # The refined schedule keeps the same linearization.
        assert refined.schedule.order == heuristic.schedule.order == order


class TestEvaluationAccounting:
    """Incremental probes count exactly like eager evaluator calls.

    ``RefinementResult.evaluations`` feeds the ablation benchmarks, so the
    sweep engine must not change the arithmetic: one probed candidate is one
    evaluator call, on either backend.
    """

    def test_greedy_counts_are_exact(self, chain, platform):
        result = greedy_checkpoint_selection(chain, range(8), platform)
        n = chain.n_tasks
        steps = result.steps
        assert steps < n  # proportional costs never justify checkpointing all
        # Round r probes the n - r remaining additions; the final round
        # probes n - steps candidates and finds no improvement.
        assert result.evaluations == 1 + sum(n - r for r in range(steps + 1))

    def test_local_search_counts_are_exact(self, chain, platform):
        result = local_search_checkpoints(Schedule(chain, range(8), {0}), platform)
        n = chain.n_tasks
        # Every round probes all n single toggles; the last round accepts
        # nothing (the search ran to a local optimum, not into a budget).
        assert result.evaluations == 1 + (result.steps + 1) * n

    def test_counts_match_across_backends(self, chain, platform):
        greedy = {
            backend: greedy_checkpoint_selection(
                chain, range(8), platform, backend=backend
            )
            for backend in ("python", "numpy")
        }
        assert greedy["python"].evaluations == greedy["numpy"].evaluations
        assert greedy["python"].steps == greedy["numpy"].steps
        local = {
            backend: local_search_checkpoints(
                Schedule(chain, range(8), {0, 3}), platform, backend=backend
            )
            for backend in ("python", "numpy")
        }
        assert local["python"].evaluations == local["numpy"].evaluations
        assert local["python"].steps == local["numpy"].steps
