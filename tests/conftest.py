"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Platform, Schedule, Task, Workflow
from repro.workflows import generators


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def failure_free_platform() -> Platform:
    """A platform that never fails."""
    return Platform.failure_free()


@pytest.fixture
def platform() -> Platform:
    """The paper's default platform: lambda = 1e-3, zero downtime."""
    return Platform.from_platform_rate(1e-3)


@pytest.fixture
def harsh_platform() -> Platform:
    """A platform with frequent failures and a downtime, to stress recovery paths."""
    return Platform.from_platform_rate(5e-2, downtime=2.0)


@pytest.fixture
def diamond() -> Workflow:
    """The 4-task diamond with proportional checkpoint costs."""
    return generators.diamond_workflow(weights=[10.0, 20.0, 5.0, 8.0]).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


@pytest.fixture
def small_chain() -> Workflow:
    """A 5-task chain with explicit weights and proportional checkpoints."""
    return generators.chain_workflow(5, weights=[4.0, 10.0, 2.0, 7.0, 5.0]).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


@pytest.fixture
def paper_example() -> Workflow:
    """The Figure-1 example workflow with proportional checkpoint costs."""
    return generators.paper_example_workflow().with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


@pytest.fixture
def paper_example_schedule(paper_example: Workflow) -> Schedule:
    """The Figure-1 schedule: linearization T0 T3 T1 T2 T4 T5 T6 T7, checkpoints {T3, T4}."""
    return Schedule(paper_example, (0, 3, 1, 2, 4, 5, 6, 7), {3, 4})


def make_workflow(weights, edges, *, ckpt_factor: float = 0.1) -> Workflow:
    """Helper used by several test modules to build ad-hoc workflows."""
    tasks = [Task(index=i, weight=float(w)) for i, w in enumerate(weights)]
    wf = Workflow(tasks, edges, name="adhoc")
    return wf.with_checkpoint_costs(mode="proportional", factor=ckpt_factor)


@pytest.fixture
def make_adhoc_workflow():
    """Factory fixture exposing :func:`make_workflow`."""
    return make_workflow
