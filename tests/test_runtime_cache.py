"""Tests for the result cache layers (repro.runtime.cache)."""

from __future__ import annotations

import pytest

from repro.runtime import DiskCache, LRUCache, ResultCache, read_disk_stats


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the stalest entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_unbounded_when_maxsize_nonpositive(self):
        cache = LRUCache(maxsize=0)
        for i in range(100):
            cache.put(str(i), i)
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_put_refreshes_existing_key_without_growth(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2


class TestDiskCache:
    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        disk = DiskCache(path)
        disk.put("key", {"ratio": 1.25, "list": [1, 2]})
        disk.close()

        reopened = DiskCache(path)
        assert reopened.get("key") == {"ratio": 1.25, "list": [1, 2]}
        assert len(reopened) == 1
        reopened.close()

    def test_lifetime_counters_accumulate(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        disk = DiskCache(path)
        disk.get("missing")
        disk.put("key", 1)
        disk.get("key")
        disk.close()
        disk = DiskCache(path)
        disk.get("key")
        counters = disk.counters()
        disk.close()
        assert counters == {"hits": 2, "misses": 1, "puts": 1}

    def test_refuses_foreign_sqlite_database(self, tmp_path):
        import sqlite3

        path = tmp_path / "someapp.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE app_data (id INTEGER PRIMARY KEY)")
        conn.commit()
        conn.close()
        before = path.read_bytes()
        with pytest.raises(ValueError, match="not a repro result cache"):
            DiskCache(path)
        assert path.read_bytes() == before  # untouched

    def test_refuses_foreign_db_with_coincidental_entries_table(self, tmp_path):
        import sqlite3

        path = tmp_path / "someapp.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE entries (id INTEGER PRIMARY KEY, payload BLOB)")
        conn.commit()
        conn.close()
        before = path.read_bytes()
        with pytest.raises(ValueError, match="not a repro result cache"):
            DiskCache(path)
        assert path.read_bytes() == before  # no WAL switch, no meta table

    def test_close_is_idempotent(self, tmp_path):
        disk = DiskCache(tmp_path / "cache.sqlite")
        disk.put("a", 1)
        disk.close()
        disk.close()

    def test_clear(self, tmp_path):
        disk = DiskCache(tmp_path / "cache.sqlite")
        disk.put("a", 1)
        disk.put("b", 2)
        disk.get("a")
        assert disk.clear() == 2
        assert len(disk) == 0
        # Lifetime counters reset along with the entries.
        assert disk.counters() == {"hits": 0, "misses": 0, "puts": 0}
        assert disk.get("a") is None
        disk.close()


class TestResultCache:
    def test_memory_only_by_default(self):
        cache = ResultCache()
        assert cache.disk is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_disk_hits_promote_to_memory(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        with ResultCache.open(path) as first:
            first.put("k", {"v": 1})

        with ResultCache.open(path) as second:
            assert second.get("k") == {"v": 1}  # served from disk
            assert "k" in second.memory  # and promoted
            assert second.stats.hits == 1

    def test_session_stats_track_misses(self, tmp_path):
        with ResultCache.open(tmp_path / "cache.sqlite") as cache:
            assert cache.get("nope") is None
            assert cache.stats.misses == 1
            assert cache.stats.hit_rate == 0.0

    def test_len_prefers_disk_layer(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        with ResultCache.open(path) as cache:
            cache.put("a", 1)
        with ResultCache.open(path, maxsize=4) as cache:
            cache.put("b", 2)
            assert len(cache) == 2  # disk knows both; memory only "b"


class TestLifetimeCounterConsistency:
    def test_memory_layer_hits_reach_disk_counters(self, tmp_path):
        """Hits served by the LRU on top of a disk cache still count."""
        path = tmp_path / "cache.sqlite"
        with ResultCache.open(path) as cache:
            cache.put("k", {"v": 1})
            assert cache.get("k") == {"v": 1}  # memory hit
            assert cache.get("k") == {"v": 1}  # memory hit
        stats = read_disk_stats(path)
        assert stats["puts"] == 1
        assert stats["hits"] == 2
        assert stats["misses"] == 0


class TestThreadSafety:
    """The cache is shared by the service daemon's worker threads.

    Before this PR a DiskCache held one sqlite connection and the LRU /
    stats bookkeeping was unguarded; hammering from several threads either
    raised ``ProgrammingError`` (cross-thread connection use) or silently
    lost counter increments.  These tests pin the repaired invariants:
    no exceptions, and exact counter conservation (every get is a hit or
    a miss, every put is counted).
    """

    N_THREADS = 8
    N_OPS = 150
    KEY_SPACE = 32

    def _hammer(self, cache, worker: int) -> int:
        puts = 0
        for i in range(self.N_OPS):
            key = f"k{(worker * 7 + i) % self.KEY_SPACE}"
            if i % 3 == 0:
                cache.put(key, {"worker": worker, "i": i})
                puts += 1
            else:
                value = cache.get(key)
                assert value is None or isinstance(value, dict)
        return puts

    def test_disk_cache_survives_concurrent_hammer(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        disk = DiskCache(tmp_path / "cache.sqlite")
        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            puts = sum(pool.map(lambda w: self._hammer(disk, w), range(self.N_THREADS)))
        counters = disk.counters()
        gets = self.N_THREADS * self.N_OPS - puts
        assert counters["puts"] == puts
        assert counters["hits"] + counters["misses"] == gets
        assert len(disk) <= self.KEY_SPACE
        disk.close()

    def test_result_cache_stats_consistent_under_threads(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        with ResultCache.open(tmp_path / "cache.sqlite") as cache:
            with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
                puts = sum(
                    pool.map(lambda w: self._hammer(cache, w), range(self.N_THREADS))
                )
            gets = self.N_THREADS * self.N_OPS - puts
            assert cache.stats.puts == puts
            assert cache.stats.hits + cache.stats.misses == gets
            # Every key that was ever written must now be readable.
            written = {
                f"k{(w * 7 + i) % self.KEY_SPACE}"
                for w in range(self.N_THREADS)
                for i in range(0, self.N_OPS, 3)
            }
            for key in written:
                assert cache.get(key) is not None

    def test_disk_cache_connection_per_thread(self, tmp_path):
        """Each thread gets its own sqlite connection; close() reaps all."""
        from concurrent.futures import ThreadPoolExecutor

        disk = DiskCache(tmp_path / "cache.sqlite")
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda i: disk.put(f"k{i}", i), range(4)))
        assert len(disk._connections) >= 2  # main thread + workers
        disk.close()
        with pytest.raises(ValueError, match="closed"):
            disk._connect()  # closed caches refuse new connections


class TestReadDiskStats:
    def test_summary_fields(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        with ResultCache.open(path) as cache:
            cache.get("missing")
            cache.put("k", {"v": 1})
            cache.get("k")
        stats = read_disk_stats(path)
        assert stats["entries"] == 1
        assert stats["size_bytes"] > 0
        assert stats["puts"] == 1
        assert stats["misses"] >= 1
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_disk_stats(tmp_path / "absent.sqlite")

    def test_path_with_uri_metacharacters(self, tmp_path):
        """'#', '?' and '%' in the path must not derail the read-only open."""
        path = tmp_path / "weird#name?100%.sqlite"
        with ResultCache.open(path) as cache:
            cache.put("k", {"v": 1})
        stats = read_disk_stats(path)
        assert stats["entries"] == 1
        assert stats["puts"] == 1
