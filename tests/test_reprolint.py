"""reprolint: engine mechanics and one fixture suite per rule.

Each rule gets a true positive (synthetic violation is found), a true
negative (conforming code passes), and a pragma-suppression case.  The
capstone is the mutation test: re-introducing the PR-4 downtime-drop bug
on a *copy* of the real tree must trip RL001 — the linter analyses source
it never imports, so it can judge a mutated or historical snapshot.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.reprolint import (
    RULES,
    LintError,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
    write_key_lock,
)
from repro.devtools.reprolint.rules.cache_keys import compute_lock_for_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise a synthetic source tree under ``tmp_path``."""
    root = tmp_path / "tree"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def lint(root: Path, *rules: str, config: dict | None = None):
    return run_lint(
        [root], repo_root=root, only_rules=list(rules) or None, config=config
    )


def rule_ids(result) -> list[str]:
    return [f.rule_id for f in result.findings]


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
def test_all_seven_rules_registered():
    assert sorted(RULES) == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
    ]
    for rule in RULES.values():
        assert rule.invariant and rule.scope in ("file", "project")


def test_parse_error_reports_rl000(tmp_path):
    root = make_tree(tmp_path, {"broken.py": "def f(:\n"})
    result = lint(root)
    assert [f.rule_id for f in result.findings] == ["RL000"]
    assert "does not parse" in result.findings[0].message


def test_unknown_rule_id_is_a_lint_error(tmp_path):
    root = make_tree(tmp_path, {"ok.py": "x = 1\n"})
    with pytest.raises(LintError, match="unknown rule"):
        lint(root, "RL999")


def test_pragma_star_and_skip_file(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "a.py": "import time\nt = sum({1.5, 2.5})  # reprolint: allow[*]\n",
            "b.py": "# reprolint: skip-file\nt = sum({1.5, 2.5})\n",
        },
    )
    result = lint(root, "RL004")
    assert result.findings == []
    # a.py's finding is pragma-suppressed; b.py is skipped before any rule
    # runs, so it contributes nothing at all
    assert len(result.suppressed) == 1
    assert result.suppressed[0].path.endswith("a.py")


def test_baseline_roundtrip_is_line_insensitive(tmp_path):
    root = make_tree(tmp_path, {"f.py": "t = sum({0.1, 0.2})\n"})
    result = lint(root, "RL004")
    assert rule_ids(result) == ["RL004"]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, result)
    # shift the finding two lines down: the fingerprint must still match
    (root / "f.py").write_text("# one\n# two\nt = sum({0.1, 0.2})\n")
    again = run_lint(
        [root], repo_root=root, only_rules=["RL004"],
        baseline=load_baseline(baseline_path),
    )
    assert again.findings == [] and len(again.baselined) == 1


def test_reporters_render_findings(tmp_path):
    root = make_tree(tmp_path, {"f.py": "t = sum({0.1, 0.2})\n"})
    result = lint(root, "RL004")
    text = render_text(result)
    assert "f.py:1:" in text and "RL004" in text
    payload = json.loads(render_json(result))
    assert payload["clean"] is False and payload["version"] == 1
    assert payload["findings"][0]["rule"] == "RL004"
    assert payload["findings"][0]["fingerprint"].startswith("RL004::")


# ----------------------------------------------------------------------
# RL001 — cache-key completeness (synthetic package tree)
# ----------------------------------------------------------------------
_PKG_PLATFORM = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Platform:
        processors: int
        failure_rate: float
        downtime: float

    @dataclass(frozen=True)
    class PlatformSpec:
        failure_rate: float
        downtime: float
        processors: int
"""

_PKG_KEYS_OK = """
    KEY_VERSION = 1
    ALGO_VERSION = 1

    def _platform_payload(platform):
        return {
            "kind": "platform",
            "v": KEY_VERSION,
            "processors": platform.processors,
            "failure_rate": platform.failure_rate,
            "downtime": platform.downtime,
        }

    def evaluation_key(schedule, platform):
        return {
            "kind": "evaluation",
            "v": KEY_VERSION,
            "schedule": schedule,
            "platform": _platform_payload(platform),
        }
"""


def test_rl001_platform_payload_missing_field(tmp_path):
    keys_missing = _PKG_KEYS_OK.replace(
        '            "downtime": platform.downtime,\n', ""
    )
    root = make_tree(
        tmp_path,
        {"pkg/core/platform.py": _PKG_PLATFORM, "pkg/runtime/keys.py": keys_missing},
    )
    result = lint(root, "RL001")
    assert any(
        "downtime" in f.message and "alias" in f.message
        for f in result.findings
    ), result.findings


def test_rl001_unused_key_builder_parameter(tmp_path):
    keys = textwrap.dedent(_PKG_KEYS_OK) + textwrap.dedent(
        """
        def scenario_unit_key(workflow, seed):
            return {"kind": "scenario", "v": KEY_VERSION, "workflow": workflow}
        """
    )
    root = make_tree(
        tmp_path,
        {"pkg/core/platform.py": _PKG_PLATFORM, "pkg/runtime/keys.py": keys},
    )
    result = lint(root, "RL001")
    assert any(
        "scenario_unit_key" in f.message and "'seed'" in f.message
        for f in result.findings
    ), result.findings


def test_rl001_spec_construction_drops_overlapping_field(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "pkg/core/platform.py": _PKG_PLATFORM,
            "pkg/runtime/keys.py": _PKG_KEYS_OK,
            "pkg/scenarios.py": """
                from dataclasses import dataclass
                from .core.platform import PlatformSpec

                @dataclass(frozen=True)
                class Scenario:
                    failure_rate: float
                    downtime: float
                    processors: int

                    @property
                    def platform_spec(self):
                        return PlatformSpec(
                            failure_rate=self.failure_rate,
                            processors=self.processors,
                        )
            """,
        },
    )
    result = lint(root, "RL001")
    assert any(
        "'downtime'" in f.message and "PR-4" in f.message
        for f in result.findings
    ), result.findings


def test_rl001_failure_model_spec_omits_stored_attr(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "pkg/core/platform.py": _PKG_PLATFORM,
            "pkg/runtime/keys.py": _PKG_KEYS_OK,
            "pkg/simulation/failures.py": """
                class ExponentialFailures:
                    def __init__(self, rate, jitter):
                        self.rate = rate
                        self.jitter = jitter
                        self._cursor = 0

                    def spec(self):
                        return {"law": "exponential", "rate": self.rate}
            """,
        },
    )
    result = lint(root, "RL001")
    assert any("'jitter'" in f.message for f in result.findings), result.findings
    assert not any("_cursor" in f.message for f in result.findings)


def test_rl001_clean_tree_passes(tmp_path):
    root = make_tree(
        tmp_path,
        {"pkg/core/platform.py": _PKG_PLATFORM, "pkg/runtime/keys.py": _PKG_KEYS_OK},
    )
    assert lint(root, "RL001").findings == []


# ----------------------------------------------------------------------
# RL001 — the capstone: re-introducing the PR-4 bug on a copy of the
# real tree must trip the linter (static analysis, no import involved)
# ----------------------------------------------------------------------
def _copy_real_tree(tmp_path: Path) -> Path:
    target = tmp_path / "repro"
    shutil.copytree(
        REPO_ROOT / "src" / "repro",
        target,
        ignore=shutil.ignore_patterns("__pycache__", "devtools"),
    )
    return target


def test_rl001_mutation_downtime_drop_is_caught(tmp_path):
    target = _copy_real_tree(tmp_path)
    clean = run_lint([target], repo_root=tmp_path, only_rules=["RL001"])
    assert clean.findings == [], "pristine copy must be RL001-clean"

    scenarios = target / "experiments" / "scenarios.py"
    text = scenarios.read_text(encoding="utf-8")
    assert "downtime=self.downtime,\n" in text
    scenarios.write_text(
        text.replace("downtime=self.downtime,\n", "", 1), encoding="utf-8"
    )

    mutated = run_lint([target], repo_root=tmp_path, only_rules=["RL001"])
    assert any(
        f.rule_id == "RL001"
        and "downtime" in f.message
        and f.path.endswith("scenarios.py")
        for f in mutated.findings
    ), f"the PR-4 downtime-drop mutation went undetected: {mutated.findings}"


# ----------------------------------------------------------------------
# RL002 — backend hygiene and the key-schema lock
# ----------------------------------------------------------------------
def test_rl002_backend_identifier_in_key_builder(tmp_path):
    keys = textwrap.dedent(_PKG_KEYS_OK) + textwrap.dedent(
        """
        def monte_carlo_key(seed, backend):
            return {"kind": "mc", "v": KEY_VERSION, "seed": seed, "backend": backend}
        """
    )
    root = make_tree(tmp_path, {"pkg/runtime/keys.py": keys})
    lock = tmp_path / "lock.json"
    _write_lock(root, lock)
    result = lint(root, "RL002", config={"key_lock_path": str(lock)})
    messages = " | ".join(f.message for f in result.findings)
    assert "backend" in messages and "backend-agnostic" in messages


def _write_lock(root: Path, lock: Path) -> None:
    ctx, schema = compute_lock_for_paths([root], root)
    assert schema is not None
    write_key_lock(ctx, lock)


def test_rl002_key_lock_lifecycle(tmp_path):
    root = make_tree(tmp_path, {"pkg/runtime/keys.py": _PKG_KEYS_OK})
    lock = tmp_path / "lock.json"
    config = {"key_lock_path": str(lock)}

    # 1. no lock yet: the rule demands one
    result = lint(root, "RL002", config=config)
    assert any("no key-schema lock" in f.message for f in result.findings)

    # 2. locked: clean
    _write_lock(root, lock)
    assert lint(root, "RL002", config=config).findings == []

    # 3. payload shape changes without a KEY_VERSION bump: violation
    keys_path = root / "pkg/runtime/keys.py"
    grown = keys_path.read_text().replace(
        '"schedule": schedule,', '"schedule": schedule,\n        "tag": 1,'
    )
    keys_path.write_text(grown)
    result = lint(root, "RL002", config=config)
    assert any("KEY_VERSION bump" in f.message for f in result.findings)

    # 4. bumping KEY_VERSION turns it into a stale-lock reminder...
    keys_path.write_text(grown.replace("KEY_VERSION = 1", "KEY_VERSION = 2"))
    result = lint(root, "RL002", config=config)
    assert any("stale" in f.message for f in result.findings)

    # 5. ...and refreshing the lock closes the loop
    _write_lock(root, lock)
    assert lint(root, "RL002", config=config).findings == []


# ----------------------------------------------------------------------
# RL003 — ambient entropy
# ----------------------------------------------------------------------
def test_rl003_flags_global_rng_and_wall_clock(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "sim.py": """
                import random, time
                import numpy as np

                def sample():
                    a = random.random()
                    b = np.random.rand(3)
                    c = time.time()
                    return a, b, c
            """,
        },
    )
    result = lint(root, "RL003")
    messages = " | ".join(f.message for f in result.findings)
    assert "random.random()" in messages
    assert "np.random.rand()" in messages
    assert "time.time()" in messages
    assert len(result.findings) == 3


def test_rl003_seeded_generators_pass(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "sim.py": """
                import random
                import numpy as np

                def sample(seed, rng):
                    local = random.Random(seed)
                    gen = np.random.default_rng(seed)
                    return local.random(), gen.random(), rng.normal()
            """,
        },
    )
    assert lint(root, "RL003").findings == []


def test_rl003_pragma_suppression(tmp_path):
    root = make_tree(
        tmp_path,
        {"sim.py": "import time\nt = time.time()  # reprolint: allow[RL003]\n"},
    )
    result = lint(root, "RL003")
    assert result.findings == [] and len(result.suppressed) == 1


# ----------------------------------------------------------------------
# RL004 — set iteration order
# ----------------------------------------------------------------------
def test_rl004_flags_ordered_consumption(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "agg.py": """
                def f(costs):
                    chosen = {1, 5, 3}
                    total = sum(costs[i] for i in chosen)
                    listed = list(chosen)
                    for i in chosen:
                        total += costs[i]
                    return total, listed
            """,
        },
    )
    result = lint(root, "RL004")
    assert rule_ids(result) == ["RL004"] * 3


def test_rl004_sorted_and_order_free_uses_pass(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "agg.py": """
                def f(costs, query):
                    chosen = {1, 5, 3}
                    total = sum(costs[i] for i in sorted(chosen))
                    hits = query in chosen
                    bound = max(chosen)
                    widened = chosen | {9}
                    return total, hits, bound, len(widened)
            """,
        },
    )
    assert lint(root, "RL004").findings == []


def test_rl004_known_set_attribute(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "sched.py": """
                def cost(self, workflow):
                    return sum(
                        workflow.task(i).checkpoint_cost
                        for i in self.checkpointed
                    )
            """,
        },
    )
    assert rule_ids(lint(root, "RL004")) == ["RL004"]


# ----------------------------------------------------------------------
# RL005 — fsync discipline
# ----------------------------------------------------------------------
def test_rl005_write_without_fsync(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "journal.py": """
                class Journal:
                    def append(self, record):
                        self._fh.write(record)
                        self._fh.flush()
            """,
        },
    )
    result = lint(root, "RL005")
    assert rule_ids(result) == ["RL005"]
    assert "os.fsync()" in result.findings[0].message


def test_rl005_flush_and_fsync_pass(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "journal.py": """
                import os

                class Journal:
                    def append(self, record):
                        self._fh.write(record)
                        self._fh.flush()
                        os.fsync(self._fh.fileno())
            """,
        },
    )
    assert lint(root, "RL005").findings == []


def test_rl005_only_journal_scoped_files(tmp_path):
    root = make_tree(
        tmp_path,
        {"report.py": "def dump(fh, text):\n    fh.write(text)\n"},
    )
    assert lint(root, "RL005").findings == []


# ----------------------------------------------------------------------
# RL006 — fault-site registry (package-anchored fixture)
# ----------------------------------------------------------------------
_PKG_FAULTS = """
    KNOWN_FAULT_SITES = frozenset({"worker_crash", "cache_read"})

    def fault_point(site, default=None, **context):
        pass
"""


def _faults_tree(tmp_path, runner_body: str, faults: str = _PKG_FAULTS):
    return make_tree(
        tmp_path,
        {
            "pkg/runtime/keys.py": _PKG_KEYS_OK,
            "pkg/runtime/faults.py": faults,
            "pkg/runtime/runner.py": runner_body,
        },
    )


def test_rl006_unregistered_site_and_non_literal(tmp_path):
    # The pragma below silences the *repo-wide* scan (this very file is
    # under tests/); it is stripped before the fixture is written so the
    # fixture's own finding still fires.
    body = """
        from .faults import fault_point

        def run(site, unit):
            fault_point("worker_crsh", default="exit=137", unit=unit)  # reprolint: allow[RL006]
            fault_point(site, default="exit=1")
        """
    root = _faults_tree(tmp_path, body.replace("  # reprolint: allow[RL006]", ""))
    result = lint(root, "RL006")
    messages = " | ".join(f.message for f in result.findings)
    assert "'worker_crsh'" in messages
    assert "string literal" in messages


def test_rl006_registered_but_dead_site(tmp_path):
    root = _faults_tree(
        tmp_path,
        """
        from .faults import fault_point

        def run(unit):
            fault_point("worker_crash", default="exit=137", unit=unit)
        """,
    )
    result = lint(root, "RL006")
    assert any(
        "'cache_read'" in f.message and "no fault_point() call" in f.message
        for f in result.findings
    ), result.findings


def test_rl006_typo_in_test_spec_text(tmp_path):
    root = _faults_tree(
        tmp_path,
        """
        from .faults import fault_point

        def run(unit):
            fault_point("worker_crash", default="exit=137", unit=unit)
            fault_point("cache_read", default="raise=OSError")
        """,
    )
    tests_dir = root / "tests"
    tests_dir.mkdir()
    (tests_dir / "test_chaos.py").write_text(
        'monkeypatch.setenv("REPRO_FAULTS", "worker_crsh:unit=2")\n'  # reprolint: allow[RL006]
    )
    result = lint(root, "RL006")
    assert any(
        "'worker_crsh'" in f.message and "silently" in f.message
        for f in result.findings
    ), result.findings


def test_rl006_missing_registry(tmp_path):
    root = _faults_tree(
        tmp_path,
        "def run():\n    pass\n",
        faults="def fault_point(site, default=None, **context):\n    pass\n",
    )
    result = lint(root, "RL006")
    assert any("KNOWN_FAULT_SITES" in f.message for f in result.findings)


def test_rl006_real_tree_registry_matches():
    """The shipped registry, call sites, tests and CI specs all agree."""
    result = run_lint(
        [REPO_ROOT / "src" / "repro"], repo_root=REPO_ROOT,
        only_rules=["RL006"],
    )
    assert result.findings == [], result.findings


# ----------------------------------------------------------------------
# RL007 — backend kwargs coherence
# ----------------------------------------------------------------------
def test_rl007_dropped_backend_and_ad_hoc_combination(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "api.py": """
                def solve(workflow, backend="auto"):
                    return workflow

                def search(workflow, backend="auto", evaluator=None):
                    if evaluator is not None:
                        return evaluator(workflow)
                    return run(workflow, backend)
            """,
        },
    )
    result = lint(root, "RL007")
    messages = " | ".join(f.message for f in result.findings)
    assert "solve() accepts 'backend' but never uses it" in messages
    assert "BackendSpec.coerce" in messages


def test_rl007_coerce_and_passthrough_pass(tmp_path):
    root = make_tree(
        tmp_path,
        {
            "api.py": """
                from .backend import BackendSpec

                def search(workflow, backend="auto", evaluator=None):
                    spec = BackendSpec.coerce(backend, evaluator=evaluator)
                    return spec.run(workflow)

                def wrapper(workflow, backend="auto", evaluator=None):
                    return search(workflow, backend=backend, evaluator=evaluator)
            """,
        },
    )
    assert lint(root, "RL007").findings == []


# ----------------------------------------------------------------------
# CLI surface: exit codes, JSON artifact, key-lock and baseline flows
# ----------------------------------------------------------------------
def test_cli_exit_codes_and_json(tmp_path, capsys):
    root = make_tree(tmp_path, {"f.py": "t = sum({0.1, 0.2})\n"})
    assert main(["lint", str(root), "--repo-root", str(root)]) == 1
    capsys.readouterr()

    report = tmp_path / "report.json"
    code = main(
        ["lint", str(root), "--repo-root", str(root), "--format", "json",
         "--output", str(report)]
    )
    assert code == 1
    payload = json.loads(report.read_text())
    assert payload["findings"][0]["rule"] == "RL004"

    (root / "f.py").write_text("t = sum(sorted({0.1, 0.2}))\n")
    assert main(["lint", str(root), "--repo-root", str(root)]) == 0
    capsys.readouterr()


def test_cli_usage_errors_exit_2(tmp_path, capsys):
    root = make_tree(tmp_path, {"f.py": "x = 1\n"})
    assert main(["lint", str(root), "--repo-root", str(root),
                 "--rules", "RL999"]) == 2
    assert main(["lint", str(tmp_path / "missing"), "--repo-root",
                 str(root)]) == 2
    assert main(["lint", str(root), "--repo-root", str(root),
                 "--write-baseline"]) == 2
    err = capsys.readouterr().err
    assert "repro lint: error:" in err


def test_cli_baseline_flow(tmp_path, capsys):
    root = make_tree(tmp_path, {"f.py": "t = sum({0.1, 0.2})\n"})
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(root), "--repo-root", str(root),
                 "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main(["lint", str(root), "--repo-root", str(root),
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_write_key_lock_roundtrip(tmp_path, capsys):
    root = make_tree(tmp_path, {"pkg/runtime/keys.py": _PKG_KEYS_OK})
    lock = tmp_path / "lock.json"
    assert main(["lint", str(root), "--repo-root", str(root),
                 "--key-lock", str(lock), "--write-key-lock"]) == 0
    payload = json.loads(lock.read_text())
    assert payload["key_version"] == 1
    assert "evaluation_key" in payload["payloads"]
    assert main(["lint", str(root), "--repo-root", str(root),
                 "--key-lock", str(lock)]) == 0
    capsys.readouterr()


# ----------------------------------------------------------------------
# The repo itself must be clean (the CI gate in ci.yml pins the same)
# ----------------------------------------------------------------------
def test_shipped_tree_is_lint_clean():
    result = run_lint([REPO_ROOT / "src" / "repro"], repo_root=REPO_ROOT)
    assert result.findings == [], render_text(result)
