"""Tests for the checkpoint-selection strategies."""

from __future__ import annotations

import pytest

from repro.heuristics import (
    CHECKPOINT_STRATEGIES,
    checkpoint_always,
    checkpoint_by_cost,
    checkpoint_by_descendant_weight,
    checkpoint_by_weight,
    checkpoint_never,
    checkpoint_periodic,
    get_selector,
    linearize,
)
from repro.workflows import generators


@pytest.fixture
def wf():
    # Weights 10, 20, 30, 40, 50 on a chain; proportional checkpoint costs.
    return generators.chain_workflow(5, weights=[10, 20, 30, 40, 50]).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


@pytest.fixture
def order(wf):
    return linearize(wf, "DF")


class TestBaselines:
    def test_never(self, wf, order):
        assert checkpoint_never(wf, order, 3) == frozenset()

    def test_always(self, wf, order):
        assert checkpoint_always(wf, order, 0) == frozenset(range(5))


class TestRankedSelectors:
    def test_by_weight_picks_heaviest(self, wf, order):
        assert checkpoint_by_weight(wf, order, 2) == frozenset({3, 4})
        assert checkpoint_by_weight(wf, order, 5) == frozenset(range(5))

    def test_by_cost_picks_cheapest(self, wf, order):
        # Checkpoint costs are proportional to weights, so cheapest = lightest.
        assert checkpoint_by_cost(wf, order, 2) == frozenset({0, 1})

    def test_by_descendant_weight(self, order):
        wf = generators.fork_workflow(3, source_weight=1.0, sink_weights=[10, 20, 30]).with_checkpoint_costs(
            mode="constant", value=1.0
        )
        sel = checkpoint_by_descendant_weight(wf, wf.topological_order(), 1)
        assert sel == frozenset({0})  # the source has the heaviest successors

    def test_count_larger_than_n_is_clamped(self, wf, order):
        assert checkpoint_by_weight(wf, order, 99) == frozenset(range(5))

    def test_zero_count_empty(self, wf, order):
        for selector in (checkpoint_by_weight, checkpoint_by_cost, checkpoint_by_descendant_weight):
            assert selector(wf, order, 0) == frozenset()

    def test_negative_count_rejected(self, wf, order):
        with pytest.raises(ValueError):
            checkpoint_by_weight(wf, order, -1)

    def test_non_int_count_rejected(self, wf, order):
        with pytest.raises(TypeError):
            checkpoint_by_weight(wf, order, 2.5)  # type: ignore[arg-type]

    def test_ties_broken_deterministically(self):
        wf = generators.chain_workflow(4, weights=[10, 10, 10, 10]).with_checkpoint_costs(
            mode="constant", value=1.0
        )
        assert checkpoint_by_weight(wf, range(4), 2) == frozenset({0, 1})


class TestPeriodic:
    def test_boundaries_follow_the_linearization(self, wf, order):
        # Total weight 150; with count=3 the boundaries are at 50 and 100.
        # Completion times along the chain: 10, 30, 60, 100, 150.
        selected = checkpoint_periodic(wf, order, 3)
        assert selected == frozenset({2, 3})

    def test_produces_at_most_count_minus_one(self, wf, order):
        for count in range(2, 6):
            assert len(checkpoint_periodic(wf, order, count)) <= count - 1

    def test_count_one_or_zero_gives_nothing(self, wf, order):
        assert checkpoint_periodic(wf, order, 0) == frozenset()
        assert checkpoint_periodic(wf, order, 1) == frozenset()

    def test_single_long_task_absorbs_several_boundaries(self):
        wf = generators.chain_workflow(3, weights=[1.0, 100.0, 1.0]).with_checkpoint_costs(
            mode="constant", value=1.0
        )
        selected = checkpoint_periodic(wf, range(3), 6)
        # Every interior boundary falls inside task 1; it is selected only once.
        assert selected == frozenset({1})

    def test_depends_on_the_linearization(self):
        wf = generators.diamond_workflow(weights=[10, 20, 30, 40]).with_checkpoint_costs(
            mode="constant", value=1.0
        )
        # Total work 100, one boundary at 50.  Executing T1 before T2 puts the
        # boundary inside T2; executing T2 first puts it inside T1.
        assert checkpoint_periodic(wf, (0, 1, 2, 3), 2) == frozenset({2})
        assert checkpoint_periodic(wf, (0, 2, 1, 3), 2) == frozenset({1})

    def test_invalid_order_rejected(self, wf):
        with pytest.raises(ValueError):
            checkpoint_periodic(wf, (0, 1, 2), 2)

    def test_ignores_dag_structure_by_design(self):
        """The paper's criticism: CkptPer may checkpoint a source instead of the
        heavy task that precedes it in the linearization."""
        wf = generators.paper_example_workflow().with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        order = (0, 3, 1, 2, 4, 5, 6, 7)
        selected = checkpoint_periodic(wf, order, 4)
        assert selected  # it checkpoints *something* purely based on elapsed work


class TestRegistry:
    @pytest.mark.parametrize("name", CHECKPOINT_STRATEGIES)
    def test_get_selector_known(self, name, wf, order):
        selector = get_selector(name)
        result = selector(wf, order, 2)
        assert isinstance(result, frozenset)
        assert all(0 <= i < wf.n_tasks for i in result)

    def test_get_selector_unknown(self):
        with pytest.raises(ValueError):
            get_selector("CkptMagic")
