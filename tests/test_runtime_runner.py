"""Tests for the campaign runner: cache integration, parallel == serial.

These are the acceptance tests of the runtime subsystem:

* a warm cache answers a repeated sweep with *zero* evaluator calls;
* ``jobs>1`` reproduces the ``jobs=1`` aggregates bit-for-bit;
* cached rows are re-stamped with the requesting sweep's identity fields.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

from repro.core.evaluator import evaluate_schedule
from repro.core.platform import Platform
from repro.core.schedule import Schedule
from repro.experiments import Scenario, run_campaign, run_grid
from repro.heuristics import linearize
from repro.runtime import NullProgress, ResultCache
from repro.runtime.runner import (
    CampaignRunner,
    evaluate_schedule_cached,
    expand_work_units,
)
from repro.workflows import pegasus


HEURISTICS = ("DF-CkptW", "RF-CkptC")  # one deterministic, one randomized


@pytest.fixture
def scenario():
    return Scenario(
        family="montage",
        n_tasks=15,
        failure_rate=1e-3,
        heuristics=HEURISTICS,
        label="runner-test",
    )


def _rows_equal_except_timing(a, b):
    names = [f.name for f in fields(type(a))]
    return all(
        getattr(a, name) == getattr(b, name)
        for name in names
        if name != "solve_seconds"
    )


class TestExpandWorkUnits:
    def test_grid_semantics_keep_scenario_seed(self, scenario):
        units = expand_work_units([scenario.with_updates(seed=9)])
        assert [u.scenario.seed for u in units] == [9, 9]
        assert [u.heuristic for u in units] == list(HEURISTICS)

    def test_campaign_semantics_repeat_per_seed(self, scenario):
        units = expand_work_units([scenario], seeds=(0, 1, 2))
        assert len(units) == 3 * len(HEURISTICS)
        assert sorted({u.scenario.seed for u in units}) == [0, 1, 2]


class TestRunnerValidation:
    def test_invalid_jobs_rejected_at_construction(self):
        """A bad --jobs value must fail eagerly, warm cache or not."""
        with pytest.raises(ValueError):
            CampaignRunner(jobs=-3)

    def test_runner_recovers_after_failed_parallel_batch(self, scenario, monkeypatch):
        """A failed batch must not poison the runner's worker pool."""
        import repro.runtime.runner as runner_module

        real = runner_module.run_heuristic

        def boom(*args, **kwargs):
            raise RuntimeError("simulated worker failure")

        with CampaignRunner(jobs=2, search_mode="geometric", max_candidates=5) as runner:
            monkeypatch.setattr(runner_module, "run_heuristic", boom)
            with pytest.raises(RuntimeError):
                runner.run_rows([scenario])
            monkeypatch.setattr(runner_module, "run_heuristic", real)
            rows = runner.run_rows([scenario])
        assert len(rows) == len(HEURISTICS)


class TestParallelMatchesSerial:
    def test_campaign_aggregates_identical(self, scenario):
        serial = run_campaign(
            [scenario], seeds=(0, 1), search_mode="geometric", max_candidates=5
        )
        parallel = run_campaign(
            [scenario], seeds=(0, 1), search_mode="geometric", max_candidates=5,
            jobs=2,
        )
        # Bit-for-bit: AggregatedResult is a frozen dataclass of floats.
        assert parallel.aggregated == serial.aggregated
        assert len(parallel.rows) == len(serial.rows)
        assert all(
            _rows_equal_except_timing(a, b)
            for a, b in zip(serial.rows, parallel.rows)
        )

    def test_grid_rows_identical(self, scenario):
        serial = run_grid([scenario], search_mode="geometric", max_candidates=5)
        parallel = run_grid(
            [scenario], search_mode="geometric", max_candidates=5, jobs=2
        )
        assert all(
            _rows_equal_except_timing(a, b) for a, b in zip(serial, parallel)
        )

    def test_jobs_none_means_all_cpus_not_serial_shortcut(self, scenario):
        """``jobs=None`` must follow the runtime contract (all CPUs)."""
        from unittest import mock

        with mock.patch(
            "repro.runtime.runner.CampaignRunner.run_units", autospec=True
        ) as spy:
            spy.return_value = []
            run_grid([scenario], search_mode="geometric", jobs=None)
        assert spy.called
        rows = run_grid(
            [scenario], search_mode="geometric", max_candidates=5, jobs=None
        )
        serial = run_grid(
            [scenario], search_mode="geometric", max_candidates=5, jobs=1
        )
        assert all(
            _rows_equal_except_timing(a, b) for a, b in zip(serial, rows)
        )

    def test_runtime_serial_path_matches_plain_loop(self, scenario):
        plain = run_grid([scenario], search_mode="geometric", max_candidates=5)
        routed = run_grid(
            [scenario], search_mode="geometric", max_candidates=5,
            cache=ResultCache(),  # forces the CampaignRunner path at jobs=1
        )
        assert all(
            _rows_equal_except_timing(a, b) for a, b in zip(plain, routed)
        )


class TestCaching:
    def test_warm_cache_performs_zero_evaluator_calls(self, scenario, monkeypatch):
        cache = ResultCache()
        cold = run_campaign(
            [scenario], seeds=(0, 1), search_mode="geometric", max_candidates=5,
            cache=cache,
        )
        assert cache.stats.misses == len(cold.rows)
        assert cache.stats.hits == 0

        # Any attempt to solve a unit on the warm pass is a hard failure.
        import repro.runtime.runner as runner_module

        def forbidden(*args, **kwargs):
            raise AssertionError("evaluator was called despite a warm cache")

        monkeypatch.setattr(runner_module, "run_heuristic", forbidden)
        warm = run_campaign(
            [scenario], seeds=(0, 1), search_mode="geometric", max_candidates=5,
            cache=cache,
        )
        assert cache.stats.hits == len(warm.rows)
        assert warm.aggregated == cold.aggregated
        assert all(
            _rows_equal_except_timing(a, b)
            for a, b in zip(cold.rows, warm.rows)
        )
        # A hit spent no solve time, and must say so rather than replaying
        # the wall-clock of whoever computed the entry.
        assert all(row.solve_seconds == 0.0 for row in warm.rows)

    def test_interrupted_run_keeps_completed_results(self, scenario, monkeypatch):
        """Each result is persisted on arrival, not after the whole sweep."""
        import repro.runtime.runner as runner_module

        cache = ResultCache()
        real = runner_module.run_heuristic
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("simulated mid-sweep failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "run_heuristic", flaky)
        with pytest.raises(RuntimeError):
            run_campaign(
                [scenario], seeds=(0, 1), search_mode="geometric",
                max_candidates=5, cache=cache,
            )
        assert cache.stats.puts == 2  # everything computed before the failure

    def test_cache_persists_across_runner_instances(self, scenario, tmp_path):
        path = tmp_path / "rows.sqlite"
        with ResultCache.open(path) as cache:
            run_campaign(
                [scenario], seeds=(0,), search_mode="geometric", max_candidates=5,
                cache=cache,
            )
        with ResultCache.open(path) as cache:
            run_campaign(
                [scenario], seeds=(0,), search_mode="geometric", max_candidates=5,
                cache=cache,
            )
            assert cache.stats.misses == 0
            assert cache.stats.hits == len(HEURISTICS)

    def test_cached_rows_are_restamped_with_requesting_label(self, scenario):
        cache = ResultCache()
        first = run_grid(
            [scenario], search_mode="geometric", max_candidates=5, cache=cache
        )
        relabeled = scenario.with_updates(label="other-sweep")
        second = run_grid(
            [relabeled], search_mode="geometric", max_candidates=5, cache=cache
        )
        assert cache.stats.hits == len(second)
        assert all(row.label == "other-sweep" for row in second)
        assert [r.overhead_ratio for r in second] == [r.overhead_ratio for r in first]

    def test_distinct_configurations_do_not_collide(self, scenario):
        cache = ResultCache()
        run_grid([scenario], search_mode="geometric", max_candidates=5, cache=cache)
        # Different search budget -> different key -> fresh computation.
        run_grid([scenario], search_mode="geometric", max_candidates=7, cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2 * len(HEURISTICS)

    def test_invalid_search_mode_fails_warm_and_cold(self, scenario):
        """A warm cache must not smuggle a typoed mode past validation."""
        baselines = scenario.with_updates(heuristics=("DF-CkptNvr",))
        cache = ResultCache()
        run_grid([baselines], search_mode="geometric", max_candidates=5, cache=cache)
        with pytest.raises(ValueError, match="search mode"):
            run_grid([baselines], search_mode="bogus", cache=cache)

    def test_run_grid_defers_to_runner_configuration(self, scenario):
        """An omitted search_mode must not clobber the runner's own."""
        from unittest import mock

        import repro.runtime.runner as runner_module

        with CampaignRunner(search_mode="geometric", max_candidates=5) as runner:
            with mock.patch.object(
                runner_module, "expand_work_units",
                wraps=runner_module.expand_work_units,
            ) as spy:
                run_grid([scenario], runner=runner)
        assert spy.call_args.kwargs["search_mode"] == "geometric"
        assert spy.call_args.kwargs["max_candidates"] == 5

    def test_exhaustive_units_hit_across_budgets(self, scenario):
        """max_candidates is ignored in exhaustive mode, so it must not key."""
        cache = ResultCache()
        run_grid([scenario], search_mode="exhaustive", max_candidates=5, cache=cache)
        run_grid([scenario], search_mode="exhaustive", max_candidates=50, cache=cache)
        assert cache.stats.misses == len(HEURISTICS)
        assert cache.stats.hits == len(HEURISTICS)

    def test_small_geometric_sweep_hits_exhaustive_entries(self, scenario):
        """With budget >= n, geometric counts equal exhaustive counts, so
        the two configurations must share cache entries."""
        cache = ResultCache()
        run_grid([scenario], search_mode="exhaustive", cache=cache)
        run_grid([scenario], search_mode="geometric", max_candidates=100, cache=cache)
        assert cache.stats.misses == len(HEURISTICS)
        assert cache.stats.hits == len(HEURISTICS)

    def test_baseline_units_hit_across_search_modes(self, scenario):
        """CkptNvr/CkptAlws results do not depend on the count search, so a
        sweep in one mode warms the baselines of a sweep in another."""
        baselines = scenario.with_updates(
            heuristics=("DF-CkptNvr", "DF-CkptAlws")
        )
        cache = ResultCache()
        run_grid([baselines], search_mode="geometric", max_candidates=5, cache=cache)
        run_grid([baselines], search_mode="exhaustive", cache=cache)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 2


class TestProgressReporting:
    def test_progress_protocol_receives_every_unit(self, scenario):
        class Recorder(NullProgress):
            def __init__(self):
                self.events = []

            def start(self, total):
                self.events.append(("start", total))

            def update(self, done, info=""):
                self.events.append(("update", done))

            def finish(self):
                self.events.append(("finish",))

        recorder = Recorder()
        runner = CampaignRunner(
            jobs=1, search_mode="geometric", max_candidates=5, progress=recorder
        )
        rows = runner.run_rows([scenario])
        assert recorder.events[0] == ("start", len(rows))
        assert recorder.events[-1] == ("finish",)
        dones = [d for kind, *rest in recorder.events if kind == "update" for d in rest]
        assert dones[-1] == len(rows)


class TestEvaluateScheduleCached:
    def test_hit_reproduces_evaluation_exactly(self):
        workflow = pegasus.ligo(18, seed=2).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        order = linearize(workflow, "DF")
        schedule = Schedule(workflow, order, set(order[::3]))
        platform = Platform.from_platform_rate(1e-3)
        cache = ResultCache()

        direct = evaluate_schedule(schedule, platform)
        first = evaluate_schedule_cached(schedule, platform, cache)
        second = evaluate_schedule_cached(schedule, platform, cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert first.expected_makespan == direct.expected_makespan
        assert second.expected_task_times == direct.expected_task_times
        assert second.overhead_ratio == direct.overhead_ratio


class TestRunMonteCarloCached:
    def test_hit_reproduces_summary_exactly(self):
        from repro.runtime.runner import run_monte_carlo_cached

        workflow = pegasus.ligo(18, seed=2).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        order = linearize(workflow, "DF")
        schedule = Schedule(workflow, order, set(order[::3]))
        platform = Platform.from_platform_rate(1e-3)
        cache = ResultCache()

        first = run_monte_carlo_cached(schedule, platform, cache, n_runs=200, seed=3)
        second = run_monte_carlo_cached(schedule, platform, cache, n_runs=200, seed=3)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert second == first

    def test_law_and_run_count_miss_separately(self):
        from repro.runtime.runner import run_monte_carlo_cached

        workflow = pegasus.montage(16, seed=1).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        order = linearize(workflow, "DF")
        schedule = Schedule(workflow, order, set(order[::4]))
        platform = Platform.from_platform_rate(1e-3)
        cache = ResultCache()

        run_monte_carlo_cached(schedule, platform, cache, n_runs=100, seed=0)
        run_monte_carlo_cached(
            schedule, platform, cache, n_runs=100, seed=0,
            failure_spec={"law": "weibull", "scale": 1000.0, "shape": 0.7},
        )
        run_monte_carlo_cached(schedule, platform, cache, n_runs=200, seed=0)
        assert cache.stats.misses == 3 and cache.stats.hits == 0

    def test_backend_shares_cache_entries(self):
        from repro.runtime.runner import run_monte_carlo_cached

        workflow = pegasus.montage(16, seed=1).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        order = linearize(workflow, "DF")
        schedule = Schedule(workflow, order, set(order[::4]))
        platform = Platform.from_platform_rate(1e-3)
        cache = ResultCache()

        python = run_monte_carlo_cached(
            schedule, platform, cache, n_runs=150, seed=0, backend="python"
        )
        numpy_ = run_monte_carlo_cached(
            schedule, platform, cache, n_runs=150, seed=0, backend="numpy"
        )
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert numpy_ == python
