"""Unit tests for :mod:`repro.core.task`."""

from __future__ import annotations

import pytest

from repro import Task


class TestTaskConstruction:
    def test_basic_fields(self):
        task = Task(index=3, weight=12.5, checkpoint_cost=1.25, recovery_cost=1.0)
        assert task.index == 3
        assert task.weight == 12.5
        assert task.checkpoint_cost == 1.25
        assert task.recovery_cost == 1.0

    def test_default_name_uses_index(self):
        assert Task(index=7, weight=1.0).name == "T7"

    def test_explicit_name_preserved(self):
        assert Task(index=0, weight=1.0, name="mAdd").name == "mAdd"

    def test_paper_notation_aliases(self):
        task = Task(index=0, weight=3.0, checkpoint_cost=0.5, recovery_cost=0.25)
        assert task.w == 3.0
        assert task.c == 0.5
        assert task.r == 0.25

    def test_zero_weight_allowed(self):
        # The Theorem-2 reduction uses a zero-weight sink.
        assert Task(index=0, weight=0.0).weight == 0.0

    def test_category_and_metadata(self):
        task = Task(index=0, weight=1.0, category="mProjectPP", metadata={"level": 1})
        assert task.category == "mProjectPP"
        assert task.metadata["level"] == 1

    def test_frozen(self):
        task = Task(index=0, weight=1.0)
        with pytest.raises(AttributeError):
            task.weight = 2.0  # type: ignore[misc]


class TestTaskValidation:
    @pytest.mark.parametrize("bad_index", [-1, -10])
    def test_negative_index_rejected(self, bad_index):
        with pytest.raises(ValueError):
            Task(index=bad_index, weight=1.0)

    @pytest.mark.parametrize("bad_index", [1.5, "3", None, True])
    def test_non_int_index_rejected(self, bad_index):
        with pytest.raises((TypeError, ValueError)):
            Task(index=bad_index, weight=1.0)  # type: ignore[arg-type]

    @pytest.mark.parametrize("field", ["weight", "checkpoint_cost", "recovery_cost"])
    def test_negative_durations_rejected(self, field):
        kwargs = {"index": 0, "weight": 1.0, field: -0.5}
        with pytest.raises(ValueError):
            Task(**kwargs)

    @pytest.mark.parametrize("value", [float("nan"), float("inf")])
    def test_non_finite_weight_rejected(self, value):
        with pytest.raises(ValueError):
            Task(index=0, weight=value)

    def test_metadata_must_be_mapping(self):
        with pytest.raises(TypeError):
            Task(index=0, weight=1.0, metadata=[1, 2])  # type: ignore[arg-type]


class TestTaskDerivation:
    def test_with_costs_replaces_selected_fields(self):
        task = Task(index=1, weight=10.0, checkpoint_cost=1.0, recovery_cost=1.0)
        updated = task.with_costs(checkpoint_cost=2.0)
        assert updated.checkpoint_cost == 2.0
        assert updated.weight == 10.0
        assert updated.recovery_cost == 1.0
        assert updated.index == 1

    def test_with_costs_returns_new_instance(self):
        task = Task(index=1, weight=10.0)
        assert task.with_costs(weight=5.0) is not task
        assert task.weight == 10.0

    def test_with_index_renames_default_name(self):
        task = Task(index=2, weight=1.0)
        moved = task.with_index(9)
        assert moved.index == 9
        assert moved.name == "T9"

    def test_with_index_keeps_custom_name(self):
        task = Task(index=2, weight=1.0, name="Inspiral_7")
        assert task.with_index(5).name == "Inspiral_7"

    def test_describe_mentions_costs(self):
        text = Task(index=0, weight=10.0, checkpoint_cost=1.0, recovery_cost=0.5).describe()
        assert "w=10" in text and "c=1" in text and "r=0.5" in text
