"""Tests for the service planner (repro.service.planner).

The load-bearing claims of the service PR live here:

* **bit-identity** — a planner response carries exactly the numbers the
  direct :func:`repro.solve_heuristic` call produces (the shared sweep and
  the cache are invisible in the output);
* **coalescing** — N same-family solve requests cost fewer sweep passes
  than N (one shared pass per linearization, observable via the metrics
  counters);
* **cache interop** — the planner reads and writes the campaign runner's
  exact cache payloads under the unchanged content-addressed keys.
"""

from __future__ import annotations

import pytest

from repro import solve_heuristic
from repro.experiments.scenarios import build_workflow
from repro.heuristics.registry import heuristic_rng
from repro.heuristics.search import candidate_counts
from repro.runtime.cache import ResultCache
from repro.runtime.runner import CampaignRunner
from repro.service.metrics import build_service_registry
from repro.service.planner import ServicePlanner, SharedSweepScorer
from repro.service.schema import (
    ServiceError,
    parse_analyse_request,
    parse_evaluate_request,
    parse_solve_request,
)


def solve_payload(**overrides):
    payload = {"family": "montage", "n_tasks": 20, "seed": 1}
    payload.update(overrides)
    return payload


def make_planner(cache: ResultCache | None = None):
    registry = build_service_registry()
    planner = ServicePlanner(cache=cache, registry=registry, jobs=1)
    return planner, registry


def direct_solve(request):
    """The reference path: what `repro solve` computes for this request."""
    workflow = build_workflow(request.scenario)
    counts = None
    if not request.heuristic.endswith(("CkptNvr", "CkptAlws")):
        counts = candidate_counts(
            workflow.n_tasks,
            mode=request.search_mode,
            max_candidates=request.max_candidates,
        )
    return solve_heuristic(
        workflow,
        request.scenario.platform,
        request.heuristic,
        rng=heuristic_rng(request.scenario.seed, request.heuristic),
        counts=counts,
        backend=request.backend,
    )


class TestSharedSweepScorer:
    def test_memoises_by_checkpoint_set(self):
        request = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        workflow = build_workflow(request.scenario)
        from repro.heuristics.linearization import linearize

        order = linearize(workflow, "DF")
        scorer = SharedSweepScorer(workflow, order, request.scenario.platform)
        sets = [frozenset(), frozenset({order[0]}), frozenset()]
        results = [scorer(s) for s in sets]
        assert scorer.evaluations == 2  # the repeat was memoised
        assert results[0].expected_makespan == results[2].expected_makespan

    def test_order_guard_rejects_mismatched_evaluator(self):
        request = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        workflow = build_workflow(request.scenario)
        from repro.heuristics.linearization import linearize

        bf_order = linearize(workflow, "BF")
        df_order = linearize(workflow, "DF")
        if bf_order == df_order:
            pytest.skip("families where DF == BF cannot exercise the guard")
        scorer = SharedSweepScorer(workflow, bf_order, request.scenario.platform)
        with pytest.raises(ValueError, match="different linearization"):
            solve_heuristic(
                workflow,
                request.scenario.platform,
                "DF-CkptW",
                rng=heuristic_rng(request.scenario.seed, "DF-CkptW"),
                counts=candidate_counts(workflow.n_tasks, mode="exhaustive"),
                sweep_evaluator=scorer,
            )


class TestBitIdentity:
    @pytest.mark.parametrize(
        "heuristic",
        ["DF-CkptW", "DF-CkptPer", "BF-CkptC", "RF-CkptW", "DF-CkptNvr", "DF-CkptAlws"],
    )
    def test_planner_matches_direct_solve(self, heuristic):
        request = parse_solve_request(
            solve_payload(heuristic=heuristic, include_schedule=True)
        )
        planner, _ = make_planner()
        (payload,) = planner.solve_batch([request])
        assert not isinstance(payload, Exception), payload
        reference = direct_solve(request)
        assert payload["expected_makespan"] == reference.expected_makespan
        assert payload["overhead_ratio"] == reference.overhead_ratio
        assert payload["n_checkpointed"] == reference.checkpoint_count
        assert payload["schedule"]["order"] == list(reference.schedule.order)
        assert payload["schedule"]["checkpointed"] == sorted(
            reference.schedule.checkpointed
        )

    def test_batched_same_family_responses_equal_solo_responses(self):
        heuristics = ["DF-CkptW", "DF-CkptPer", "DF-CkptC"]
        requests = [
            parse_solve_request(solve_payload(heuristic=h)) for h in heuristics
        ]
        planner, _ = make_planner()
        batched = planner.solve_batch(requests)
        for request, payload in zip(requests, batched):
            solo_planner, _ = make_planner()
            (solo,) = solo_planner.solve_batch([request])
            assert payload["expected_makespan"] == solo["expected_makespan"]
            assert payload["n_checkpointed"] == solo["n_checkpointed"]
            assert payload["cache_key"] == solo["cache_key"]


class TestCoalescing:
    def test_same_family_batch_shares_one_sweep_pass(self):
        heuristics = ["DF-CkptW", "DF-CkptC", "DF-CkptD", "DF-CkptPer"]
        requests = [
            parse_solve_request(solve_payload(heuristic=h)) for h in heuristics
        ]
        planner, registry = make_planner()
        results = planner.solve_batch(requests)
        assert all(not isinstance(r, Exception) for r in results)
        # Four searches over the same DF linearization ride ONE sweep pass:
        # strictly fewer backend passes than requests (the acceptance bar).
        passes = registry.get("repro_solve_sweep_passes_total").value()
        assert passes == 1 < len(requests)
        assert registry.get("repro_solve_computed_total").value() == len(requests)

    def test_distinct_linearizations_get_their_own_pass(self):
        requests = [
            parse_solve_request(solve_payload(heuristic="DF-CkptW")),
            parse_solve_request(solve_payload(heuristic="BF-CkptW")),
        ]
        planner, registry = make_planner()
        planner.solve_batch(requests)
        assert registry.get("repro_solve_sweep_passes_total").value() == 2

    def test_distinct_families_never_share(self):
        requests = [
            parse_solve_request(solve_payload(family="montage", heuristic="DF-CkptW")),
            parse_solve_request(
                solve_payload(family="cybershake", heuristic="DF-CkptW")
            ),
        ]
        planner, registry = make_planner()
        results = planner.solve_batch(requests)
        assert registry.get("repro_solve_sweep_passes_total").value() == 2
        assert results[0]["expected_makespan"] != results[1]["expected_makespan"]

    def test_rf_units_are_singletons_with_private_sweeps(self):
        requests = [
            parse_solve_request(solve_payload(heuristic="RF-CkptW", seed=1)),
            parse_solve_request(solve_payload(heuristic="RF-CkptW", seed=2)),
        ]
        planner, registry = make_planner()
        results = planner.solve_batch(requests)
        assert all(not isinstance(r, Exception) for r in results)
        assert registry.get("repro_solve_sweep_passes_total").value() == 2

    def test_identical_requests_in_one_batch_single_flight(self):
        request = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        planner, registry = make_planner()
        results = planner.solve_batch([request, request, request])
        assert registry.get("repro_solve_computed_total").value() == 1
        assert registry.get("repro_solve_coalesced_total").value() == 2
        sources = sorted(r["cache"] for r in results)
        assert sources == ["coalesced", "coalesced", "computed"]
        assert len({r["expected_makespan"] for r in results}) == 1

    def test_bad_unit_does_not_poison_the_batch(self):
        import dataclasses

        good = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        # Fabricate a unit that fails during planning (an impossible
        # heuristic name cannot pass parse_solve_request, so splice it in).
        bad = dataclasses.replace(good, heuristic="ZZ-Nope")
        planner, registry = make_planner()
        results = planner.solve_batch([bad, good])
        assert isinstance(results[0], Exception)
        assert not isinstance(results[1], Exception)
        assert registry.get("repro_solve_errors_total").value() >= 1


class TestCacheInterop:
    def test_second_batch_is_served_from_cache(self):
        request = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        planner, registry = make_planner(ResultCache())
        (first,) = planner.solve_batch([request])
        (second,) = planner.solve_batch([request])
        assert first["cache"] == "computed"
        assert second["cache"] == "cache"
        assert second["expected_makespan"] == first["expected_makespan"]
        assert registry.get("repro_solve_cache_hits_total").value() == 1
        assert planner.cache_hit_rate() > 0.0

    def test_campaign_warmed_cache_serves_the_daemon(self, tmp_path):
        """A cache written by `repro campaign` answers service requests."""
        request = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        path = tmp_path / "cache.sqlite"
        with ResultCache.open(path) as cache:
            with CampaignRunner(jobs=1, cache=cache) as runner:
                (row,) = runner.run_rows([request.scenario])
        with ResultCache.open(path) as cache:
            planner, registry = make_planner(cache)
            (payload,) = planner.solve_batch([request])
        assert payload["cache"] == "cache"
        assert payload["expected_makespan"] == row.expected_makespan
        assert registry.get("repro_solve_sweep_passes_total").value() == 0

    def test_include_schedule_recomputes_on_lru_miss_with_same_outcome(self):
        import dataclasses

        request = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        with_schedule = dataclasses.replace(request, include_schedule=True)
        planner, _ = make_planner(ResultCache())
        (first,) = planner.solve_batch([request])
        planner._schedules.clear()  # drop the in-memory schedule layer
        (second,) = planner.solve_batch([with_schedule])
        assert second["cache"] == "computed"  # outcome cached, schedule gone
        assert second["expected_makespan"] == first["expected_makespan"]
        assert len(second["schedule"]["order"]) == second["actual_n_tasks"]
        assert len(second["schedule"]["checkpointed"]) == second["n_checkpointed"]


class TestEvaluateAnalyse:
    @pytest.fixture
    def schedule_payload(self):
        from repro.workflows.serialization import schedule_to_dict

        request = parse_solve_request(solve_payload(heuristic="DF-CkptW"))
        result = direct_solve(request)
        return schedule_to_dict(result.schedule)

    def test_evaluate_matches_direct_evaluation(self, schedule_payload):
        from repro.core.evaluator import evaluate_schedule
        from repro.workflows.serialization import schedule_from_dict

        request = parse_evaluate_request(
            {"schedule": schedule_payload, "failure_rate": 1e-3}
        )
        planner, _ = make_planner()
        payload = planner.evaluate(request)
        reference = evaluate_schedule(
            schedule_from_dict(schedule_payload), request.platform
        )
        assert payload["expected_makespan"] == reference.expected_makespan
        assert payload["overhead_ratio"] == reference.overhead_ratio

    def test_analyse_breakdown_fields(self, schedule_payload):
        request = parse_analyse_request(
            {
                "schedule": schedule_payload,
                "failure_rate": 1e-3,
                "top": 3,
                "utilities": True,
            }
        )
        planner, _ = make_planner()
        payload = planner.analyse(request)
        assert payload["expected_makespan"] > 0
        assert payload["waste_fraction"] >= 0
        assert len(payload["worst_tasks"]) <= 3
        assert {"task_index", "name", "overhead_ratio"} <= set(payload["worst_tasks"][0])
        utilities = payload["utilities"]
        assert utilities == sorted(utilities, key=lambda u: -u["utility"])


class TestSchemaValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown field"):
            parse_solve_request(solve_payload(typo_field=1))

    def test_unknown_family_rejected(self):
        with pytest.raises(ServiceError, match="unknown workflow family"):
            parse_solve_request(solve_payload(family="nope"))

    def test_boolean_is_not_an_int(self):
        with pytest.raises(ServiceError, match="boolean"):
            parse_solve_request(solve_payload(n_tasks=True))

    def test_bad_heuristic_rejected(self):
        with pytest.raises(ServiceError):
            parse_solve_request(solve_payload(heuristic="XX-Nope"))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError, match="unknown backend"):
            parse_solve_request(solve_payload(backend="fortran"))

    def test_failure_rate_defaults_to_family_paper_value(self):
        from repro.experiments.scenarios import DEFAULT_FAILURE_RATES

        request = parse_solve_request(solve_payload(family="genome"))
        assert request.scenario.failure_rate == DEFAULT_FAILURE_RATES["genome"]

    def test_error_payload_shape(self):
        error = ServiceError("nope", status=422, code="unprocessable")
        assert error.to_payload() == {
            "error": {"code": "unprocessable", "message": "nope"}
        }

    def test_evaluate_requires_schedule_object(self):
        with pytest.raises(ServiceError, match="schedule"):
            parse_evaluate_request({"failure_rate": 1e-3})
