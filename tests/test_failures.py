"""Tests for the failure models of the Monte-Carlo engine."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Platform
from repro.simulation import (
    ExponentialFailures,
    LogNormalFailures,
    NoFailures,
    ScriptedFailures,
    WeibullFailures,
    failure_model_for,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestNoFailures:
    def test_never_fails(self, rng):
        model = NoFailures()
        assert model.sample(rng) == math.inf
        assert model.mean_time_between_failures == math.inf


class TestExponential:
    def test_mean_matches_rate(self, rng):
        model = ExponentialFailures(rate=1e-2)
        samples = [model.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.05)
        assert model.mean_time_between_failures == pytest.approx(100.0)

    def test_zero_rate_never_fails(self, rng):
        assert ExponentialFailures(0.0).sample(rng) == math.inf

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ExponentialFailures(-1.0)
        with pytest.raises(ValueError):
            ExponentialFailures(math.inf)

    def test_memoryless_cv_close_to_one(self, rng):
        model = ExponentialFailures(rate=0.05)
        samples = np.array([model.sample(rng) for _ in range(20000)])
        assert np.std(samples) / np.mean(samples) == pytest.approx(1.0, rel=0.05)


class TestWeibull:
    def test_from_mtbf_matches_mean(self, rng):
        model = WeibullFailures.from_mtbf(500.0, shape=0.7)
        samples = [model.sample(rng) for _ in range(40000)]
        assert np.mean(samples) == pytest.approx(500.0, rel=0.05)
        assert model.mean_time_between_failures == pytest.approx(500.0)

    def test_shape_one_is_exponential_mean(self):
        model = WeibullFailures.from_mtbf(200.0, shape=1.0)
        assert model.scale == pytest.approx(200.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WeibullFailures(scale=-1.0)
        with pytest.raises(ValueError):
            WeibullFailures(scale=1.0, shape=0.0)
        with pytest.raises(ValueError):
            WeibullFailures.from_mtbf(0.0)

    def test_infant_mortality_has_higher_variance(self, rng):
        exp_like = WeibullFailures.from_mtbf(100.0, shape=1.0)
        infant = WeibullFailures.from_mtbf(100.0, shape=0.5)
        exp_samples = np.array([exp_like.sample(rng) for _ in range(20000)])
        infant_samples = np.array([infant.sample(rng) for _ in range(20000)])
        assert np.std(infant_samples) > np.std(exp_samples)


class TestLogNormal:
    def test_from_mtbf_matches_mean(self, rng):
        model = LogNormalFailures.from_mtbf(300.0, sigma=0.8)
        samples = [model.sample(rng) for _ in range(40000)]
        assert np.mean(samples) == pytest.approx(300.0, rel=0.05)
        assert model.mean_time_between_failures == pytest.approx(300.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LogNormalFailures(mu=0.0, sigma=0.0)
        with pytest.raises(ValueError):
            LogNormalFailures.from_mtbf(-10.0)


class TestScripted:
    def test_replays_and_then_stops(self, rng):
        model = ScriptedFailures([5.0, 3.0])
        assert model.sample(rng) == 5.0
        assert model.sample(rng) == 3.0
        assert model.sample(rng) == math.inf
        assert model.remaining == 0

    def test_reset(self, rng):
        model = ScriptedFailures([5.0])
        model.sample(rng)
        model.reset()
        assert model.sample(rng) == 5.0

    def test_mean(self):
        assert ScriptedFailures([2.0, 4.0]).mean_time_between_failures == pytest.approx(3.0)
        assert ScriptedFailures([]).mean_time_between_failures == math.inf

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            ScriptedFailures([1.0, -2.0])


class TestFailureModelFor:
    def test_failure_free_platform(self):
        assert isinstance(failure_model_for(Platform.failure_free()), NoFailures)

    def test_failing_platform(self):
        model = failure_model_for(Platform.from_platform_rate(1e-3))
        assert isinstance(model, ExponentialFailures)
        assert model.rate == pytest.approx(1e-3)
