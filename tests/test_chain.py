"""Tests for the linear-chain dynamic program (Toueg–Babaoğlu baseline)."""

from __future__ import annotations

import itertools

import pytest

from repro import Platform, Schedule, evaluate_schedule
from repro.theory import chain_expected_makespan, chain_order, solve_chain
from repro.theory.bruteforce import optimal_checkpoints_for_order
from repro.workflows import generators


class TestChainOrder:
    def test_returns_the_only_linearization(self):
        wf = generators.chain_workflow(5, seed=0)
        assert chain_order(wf) == (0, 1, 2, 3, 4)

    def test_rejects_non_chain(self):
        wf = generators.diamond_workflow(seed=0)
        with pytest.raises(ValueError):
            chain_order(wf)
        with pytest.raises(ValueError):
            solve_chain(wf, Platform.from_platform_rate(1e-3))


class TestChainExpectedMakespan:
    def test_failure_free(self):
        wf = generators.chain_workflow(4, weights=[10, 20, 30, 40]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        value = chain_expected_makespan(wf, Platform.failure_free(), {1})
        assert value == pytest.approx(100 + 2.0)

    def test_matches_general_evaluator_for_many_checkpoint_sets(self):
        wf = generators.chain_workflow(6, seed=3, mean_weight=25.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(6e-3, downtime=2.0)
        for size in range(0, 4):
            for subset in itertools.combinations(range(6), size):
                closed = chain_expected_makespan(wf, platform, subset)
                general = evaluate_schedule(Schedule(wf, range(6), subset), platform).expected_makespan
                assert closed == pytest.approx(general), subset


class TestSolveChain:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce(self, seed):
        wf = generators.chain_workflow(7, seed=seed, mean_weight=40.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(7e-3, downtime=1.0)
        solution = solve_chain(wf, platform)
        brute = optimal_checkpoints_for_order(wf, platform, range(7))
        assert solution.expected_makespan == pytest.approx(brute.expected_makespan)
        assert solution.expected_makespan == pytest.approx(
            evaluate_schedule(solution.schedule, platform).expected_makespan
        )

    def test_failure_free_checkpoints_nothing(self):
        wf = generators.chain_workflow(6, seed=1).with_checkpoint_costs(mode="proportional", factor=0.1)
        solution = solve_chain(wf, Platform.failure_free())
        assert solution.checkpointed == frozenset()
        assert solution.expected_makespan == pytest.approx(wf.total_weight)

    def test_heavy_failure_checkpoints_many(self):
        wf = generators.chain_workflow(8, weights=[80] * 8).with_checkpoint_costs(
            mode="proportional", factor=0.02
        )
        solution = solve_chain(wf, Platform.from_platform_rate(1e-2))
        assert len(solution.checkpointed) >= 4

    def test_never_worse_than_baselines(self):
        wf = generators.chain_workflow(10, seed=9, mean_weight=60.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(4e-3)
        solution = solve_chain(wf, platform)
        never = chain_expected_makespan(wf, platform, ())
        always = chain_expected_makespan(wf, platform, range(10))
        assert solution.expected_makespan <= never + 1e-9
        assert solution.expected_makespan <= always + 1e-9

    def test_last_task_checkpoint_is_useless(self):
        """Checkpointing the final task only adds overhead; the DP must avoid it."""
        wf = generators.chain_workflow(5, seed=2, mean_weight=50.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        solution = solve_chain(wf, Platform.from_platform_rate(8e-3))
        assert 4 not in solution.checkpointed
