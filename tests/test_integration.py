"""End-to-end integration tests across the whole library.

These tests exercise the full pipeline used by the paper's evaluation:
generate a Pegasus-like workflow, assign checkpoint costs, run heuristics,
evaluate analytically, cross-check by fault-injection simulation, and render
reports — plus the qualitative findings of Section 6 at smoke scale.
"""

from __future__ import annotations

import pytest

from repro import (
    Platform,
    run_monte_carlo,
    solve_all_heuristics,
    solve_heuristic,
)
from repro.experiments import Scenario, format_ratio_table, run_scenario
from repro.heuristics import HEURISTIC_NAMES
from repro.theory import solve_chain
from repro.workflows import generators, pegasus


class TestFullPipeline:
    def test_montage_end_to_end_with_simulation_crosscheck(self):
        workflow = pegasus.montage(40, seed=21).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(1e-3)
        result = solve_heuristic(workflow, platform, "DF-CkptW", counts=[5, 10, 20, 35])
        # The analytical expectation of the produced schedule is confirmed by
        # Monte-Carlo simulation within a generous tolerance.
        summary = run_monte_carlo(result.schedule, platform, n_runs=600, rng=5)
        assert summary.mean_makespan == pytest.approx(result.expected_makespan, rel=0.05)

    def test_all_heuristics_on_every_family(self):
        platform_for = {
            "montage": Platform.from_platform_rate(1e-3),
            "cybershake": Platform.from_platform_rate(1e-3),
            "ligo": Platform.from_platform_rate(1e-3),
            "genome": Platform.from_platform_rate(1e-4),
        }
        for family, platform in platform_for.items():
            workflow = pegasus.generate(family, 30, seed=13).with_checkpoint_costs(
                mode="proportional", factor=0.1
            )
            counts = [2, 5, 10, 20, workflow.n_tasks]
            results = solve_all_heuristics(workflow, platform, rng=1, counts=counts)
            assert set(results) == set(HEURISTIC_NAMES)
            ratios = {name: r.overhead_ratio for name, r in results.items()}
            best = min(ratios.values())
            # Baselines never beat the best searchful heuristic.
            assert ratios["DF-CkptNvr"] >= best - 1e-9
            assert ratios["DF-CkptAlws"] >= best - 1e-9
            # Everything is a sane ratio.
            assert all(r >= 1.0 for r in ratios.values())


class TestPaperFindingsAtSmokeScale:
    """Qualitative findings of Section 6, checked on small instances."""

    def test_checkpointing_strategies_beat_baselines_on_ligo(self):
        workflow = pegasus.ligo(45, seed=3).with_checkpoint_costs(mode="proportional", factor=0.1)
        platform = Platform.from_platform_rate(1e-3)
        ckptw = solve_heuristic(workflow, platform, "DF-CkptW")
        ckptc = solve_heuristic(workflow, platform, "DF-CkptC")
        never = solve_heuristic(workflow, platform, "DF-CkptNvr")
        always = solve_heuristic(workflow, platform, "DF-CkptAlws")
        assert ckptw.overhead_ratio <= min(never.overhead_ratio, always.overhead_ratio) + 1e-9
        assert ckptc.overhead_ratio <= never.overhead_ratio + 1e-9

    def test_df_no_worse_than_bf_for_ckptw_on_genome(self):
        workflow = pegasus.genome(40, seed=5).with_checkpoint_costs(mode="proportional", factor=0.1)
        platform = Platform.from_platform_rate(1e-4)
        df = solve_heuristic(workflow, platform, "DF-CkptW", counts=[5, 10, 20, 30])
        bf = solve_heuristic(workflow, platform, "BF-CkptW", counts=[5, 10, 20, 30])
        # The paper's main linearization finding (Figure 2): DF dominates BF.
        assert df.overhead_ratio <= bf.overhead_ratio + 1e-6

    def test_overhead_grows_with_failure_rate(self):
        workflow = pegasus.cybershake(30, seed=7).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        ratios = []
        for rate in (1e-4, 5e-4, 1e-3, 5e-3):
            result = solve_heuristic(
                workflow, Platform.from_platform_rate(rate), "DF-CkptC", counts=[5, 10, 20, 29]
            )
            ratios.append(result.overhead_ratio)
        assert ratios == sorted(ratios)

    def test_genome_suffers_more_than_montage_at_same_rate(self):
        """Longer tasks (Genome) lose more work per failure than short ones (Montage)."""
        platform = Platform.from_platform_rate(1e-4)
        genome = pegasus.genome(35, seed=2).with_checkpoint_costs(mode="proportional", factor=0.1)
        montage = pegasus.montage(35, seed=2).with_checkpoint_costs(mode="proportional", factor=0.1)
        genome_ratio = solve_heuristic(genome, platform, "DF-CkptW", counts=[5, 15, 30]).overhead_ratio
        montage_ratio = solve_heuristic(montage, platform, "DF-CkptW", counts=[5, 15, 30]).overhead_ratio
        assert genome_ratio > montage_ratio


class TestAgainstOptimalBaselines:
    def test_heuristics_on_a_chain_are_no_better_than_the_dp(self):
        """The Toueg–Babaoğlu DP is optimal on chains: heuristics cannot beat it."""
        workflow = generators.chain_workflow(12, seed=11, mean_weight=50.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(3e-3)
        optimal = solve_chain(workflow, platform).expected_makespan
        for heuristic in ("DF-CkptW", "DF-CkptC", "DF-CkptPer", "DF-CkptNvr", "DF-CkptAlws"):
            result = solve_heuristic(workflow, platform, heuristic)
            assert result.expected_makespan >= optimal - 1e-6
        # And CkptW on a chain with proportional costs should land close to optimal.
        ckptw = solve_heuristic(workflow, platform, "DF-CkptW")
        assert ckptw.expected_makespan <= optimal * 1.05


class TestHarnessIntegration:
    def test_scenario_rows_render_everywhere(self):
        scenario = Scenario(
            family="montage",
            n_tasks=25,
            failure_rate=1e-3,
            heuristics=("DF-CkptW", "DF-CkptPer", "DF-CkptNvr"),
            seed=9,
            label="integration",
        )
        rows = run_scenario(scenario, search_mode="geometric", max_candidates=6)
        table = format_ratio_table(rows)
        assert "montage" in table
        evaluated = {row.heuristic: row for row in rows}
        # Re-evaluating the winning schedule reproduces the reported number.
        best_row = min(rows, key=lambda r: r.overhead_ratio)
        assert best_row.overhead_ratio >= 1.0
