"""Unit tests for the incremental sweep engine (:mod:`repro.core.sweep`).

The numerical heart of the engine — bit-for-bit equality with per-candidate
evaluation across random DAGs, platforms and toggle sequences — is pinned by
the property suite in ``tests/test_backend_equivalence.py``.  This module
covers the engine's contract: backend resolution and the eager fallback,
validation, bookkeeping (``current`` / ``stats``), the row-content cache, and
the saturation / structural-zero regimes.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    Platform,
    Schedule,
    SweepState,
    Task,
    Workflow,
    batch_evaluate,
    evaluate_schedule,
)
from repro.heuristics import linearize
from repro.workflows import generators, pegasus


@pytest.fixture
def instance():
    workflow = pegasus.montage(40, seed=5).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    order = linearize(workflow, "DF")
    platform = Platform.from_platform_rate(1e-3, downtime=2.0)
    return workflow, order, platform


def _reference(workflow, order, selected, platform, backend="numpy"):
    return evaluate_schedule(
        Schedule(workflow, order, selected), platform, backend=backend
    )


class TestContract:
    def test_matches_per_candidate_evaluation_exactly(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        for selected in [frozenset(), frozenset({3}), frozenset({3, 17}), frozenset({17})]:
            got = state.evaluate(selected)
            ref = _reference(workflow, order, selected, platform)
            assert got.expected_makespan == ref.expected_makespan
            assert got.expected_task_times == ref.expected_task_times

    def test_current_tracks_last_evaluated_set(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        assert state.current == frozenset()
        state.evaluate({2, 5})
        assert state.current == frozenset({2, 5})
        state.evaluate({5})
        assert state.current == frozenset({5})

    def test_duplicate_set_is_served_from_state(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        first = state.evaluate({1, 4})
        again = state.evaluate({1, 4})
        assert again == first
        assert state.stats.evaluations == 2
        assert state.stats.full_recomputes == 1

    def test_keep_task_times_flag(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        slim = state.evaluate({2}, keep_task_times=False)
        assert slim.expected_task_times == ()
        full = state.evaluate({2}, keep_task_times=True)
        assert len(full.expected_task_times) == workflow.n_tasks
        assert full.expected_makespan == slim.expected_makespan

    def test_toggle_add_remove_readd_round_trips(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        base = frozenset({0, 9, 21})
        values = {}
        for selected in (base, base | {13}, base, base | {13}):
            values.setdefault(selected, []).append(
                state.evaluate(selected).expected_makespan
            )
        for selected, observed in values.items():
            ref = _reference(workflow, order, selected, platform).expected_makespan
            assert all(value == ref for value in observed)

    def test_revert_to_base_restores_rows_from_cache(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        base = frozenset(order[::4])
        state.evaluate(frozenset())
        state.evaluate(base)          # rows cached under the base configuration
        state.evaluate(base | {order[1]})
        got = state.evaluate(base)    # ... and restored by copy on the revert
        assert state.stats.rows_restored > 0
        ref = _reference(workflow, order, base, platform)
        assert got.expected_makespan == ref.expected_makespan
        assert got.expected_task_times == ref.expected_task_times

    def test_stats_accounting(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy", profile=True)
        state.evaluate({2})
        state.evaluate({2, 30})
        state.evaluate({30})
        stats = state.stats
        assert stats.evaluations == 3
        assert stats.full_recomputes == 1
        # 1 initial toggle, then one add and one remove.
        assert stats.toggles == 3
        assert stats.rows_refilled > 0
        assert stats.kernel_positions >= workflow.n_tasks
        assert stats.fill_seconds > 0.0
        assert stats.kernel_seconds > 0.0


class TestValidationAndFallback:
    def test_invalid_order_rejected(self, instance):
        workflow, _, platform = instance
        with pytest.raises(ValueError, match="permutation"):
            SweepState(workflow, [0, 0, 1], platform, backend="numpy")

    def test_dependency_violation_rejected(self, instance):
        workflow, order, platform = instance
        bad = tuple(reversed(order))
        with pytest.raises(ValueError, match="dependency"):
            SweepState(workflow, bad, platform, backend="numpy")

    def test_invalid_task_index_rejected(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        with pytest.raises(ValueError, match="invalid task indices"):
            state.evaluate({workflow.n_tasks})

    def test_python_backend_is_eager_reference(self, instance):
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="python")
        assert not state.is_incremental
        for selected in (frozenset({1}), frozenset({1, 2})):
            got = state.evaluate(selected)
            ref = _reference(workflow, order, selected, platform, backend="python")
            assert got == ref
        slim = state.evaluate({1}, keep_task_times=False)
        assert slim.expected_task_times == ()

    def test_failure_free_platform_is_eager(self, instance):
        workflow, order, _ = instance
        state = SweepState(workflow, order, Platform.failure_free(), backend="numpy")
        assert not state.is_incremental
        evaluation = state.evaluate(frozenset({0}))
        assert evaluation.expected_makespan == pytest.approx(
            Schedule(workflow, order, {0}).failure_free_makespan
        )

    def test_empty_workflow_is_eager(self):
        workflow = Workflow([], [])
        platform = Platform.from_platform_rate(1e-3)
        state = SweepState(workflow, (), platform, backend="numpy")
        assert not state.is_incremental
        assert state.evaluate(frozenset()).expected_makespan == 0.0

    def test_auto_backend_resolution(self, instance):
        workflow, order, platform = instance
        assert SweepState(workflow, order, platform, backend="numpy").backend == "numpy"
        assert SweepState(workflow, order, platform, backend="python").backend == "python"
        # montage-40 exceeds the auto threshold, so auto routes to numpy.
        assert SweepState(workflow, order, platform).is_incremental


class TestRegimes:
    def test_zero_recovery_costs_keep_structural_zero_semantics(self):
        workflow = pegasus.montage(30, seed=7).with_checkpoint_costs(
            mode="proportional", factor=0.0
        )
        order = linearize(workflow, "DF")
        platform = Platform.from_platform_rate(1e-2)
        state = SweepState(workflow, order, platform, backend="numpy")
        current: set[int] = set()
        for task in (3, 11, 3, 26, 11):
            current ^= {task}
            got = state.evaluate(frozenset(current))
            ref = _reference(workflow, order, frozenset(current), platform)
            assert got.expected_makespan == ref.expected_makespan
            assert got.expected_task_times == ref.expected_task_times

    def test_saturated_instances_toggle_exactly(self):
        """inf makespans (masked-dot regime) disable prefix reuse, not equality."""
        n_mid = 40
        weights = [6.45e10] + [1e9] * n_mid + [5e9]
        tasks = [Task(index=i, weight=w) for i, w in enumerate(weights)]
        workflow = Workflow(tasks, [(0, n_mid + 1)]).with_checkpoint_costs(
            mode="proportional", factor=0.0
        )
        order = tuple(range(n_mid + 2))
        platform = Platform.from_platform_rate(1e-8)
        state = SweepState(workflow, order, platform, backend="numpy")
        current: set[int] = set()
        saw_inf = False
        for task in (5, 0, 5, 17, 0):
            current ^= {task}
            got = state.evaluate(frozenset(current))
            ref = _reference(workflow, order, frozenset(current), platform)
            if math.isinf(ref.expected_makespan):
                saw_inf = True
            assert got.expected_makespan == ref.expected_makespan
            assert got.expected_task_times == ref.expected_task_times
        assert saw_inf

    def test_no_edge_workflow(self):
        tasks = [Task(index=i, weight=float(i + 1)) for i in range(6)]
        workflow = Workflow(tasks, [])
        platform = Platform.from_platform_rate(1e-2)
        state = SweepState(workflow, range(6), platform, backend="numpy")
        for selected in (frozenset(), frozenset({0, 3}), frozenset(range(6))):
            got = state.evaluate(selected)
            ref = _reference(workflow, range(6), selected, platform)
            assert got.expected_makespan == ref.expected_makespan


class TestBatchEvaluatePlumbing:
    def test_batch_evaluate_routes_through_the_sweep(self, instance):
        workflow, order, platform = instance
        sets = [frozenset(), frozenset({2}), frozenset({2, 7}), frozenset({7})]
        batch = batch_evaluate(workflow, order, sets, platform, backend="numpy")
        for selected, evaluation in zip(sets, batch):
            ref = _reference(workflow, order, selected, platform)
            assert evaluation.expected_makespan == ref.expected_makespan

    def test_batch_evaluate_validates_sets_up_front(self, instance):
        workflow, order, platform = instance
        with pytest.raises(ValueError, match="invalid task indices"):
            batch_evaluate(
                workflow, order, [frozenset(), {workflow.n_tasks}], platform,
                backend="numpy",
            )

    def test_chain_instances_match(self):
        workflow = generators.chain_workflow(24, seed=3).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(2e-3, downtime=1.0)
        state = SweepState(workflow, range(24), platform, backend="numpy")
        current: set[int] = set()
        for task in (4, 9, 4, 20, 9, 4):
            current ^= {task}
            got = state.evaluate(frozenset(current))
            ref = _reference(workflow, range(24), frozenset(current), platform)
            assert got.expected_makespan == ref.expected_makespan
            assert got.expected_task_times == ref.expected_task_times


class TestAbortedEvaluationRecovery:
    def test_exception_mid_evaluation_poisons_then_recovers(self, instance):
        """An aborted evaluate() must not leave a half-updated state behind."""
        workflow, order, platform = instance
        state = SweepState(workflow, order, platform, backend="numpy")
        state.evaluate({1, 5, 9})

        original = state._refill_rows

        def boom(rows):
            raise MemoryError("injected mid-evaluation")

        state._refill_rows = boom  # type: ignore[method-assign]
        with pytest.raises(MemoryError):
            state.evaluate({1, 5, 9, 20})
        state._refill_rows = original  # type: ignore[method-assign]

        for selected in ({1, 5, 9, 20}, {5, 9}, set()):
            got = state.evaluate(frozenset(selected))
            ref = _reference(workflow, order, frozenset(selected), platform)
            assert got.expected_makespan == ref.expected_makespan
            assert got.expected_task_times == ref.expected_task_times
