"""Tests for the generic DAG generators."""

from __future__ import annotations

import pytest

from repro import WorkflowStructure
from repro.workflows import generators


class TestChain:
    def test_shape(self):
        wf = generators.chain_workflow(6, seed=0)
        assert wf.n_tasks == 6
        assert wf.is_chain()

    def test_explicit_weights(self):
        wf = generators.chain_workflow(3, weights=[1, 2, 3])
        assert [t.weight for t in wf.tasks] == [1, 2, 3]

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            generators.chain_workflow(3, weights=[1, 2])

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            generators.chain_workflow(0)

    def test_deterministic_given_seed(self):
        assert generators.chain_workflow(5, seed=3) == generators.chain_workflow(5, seed=3)
        assert generators.chain_workflow(5, seed=3) != generators.chain_workflow(5, seed=4)


class TestForkAndJoin:
    def test_fork_shape(self):
        wf = generators.fork_workflow(5, seed=1)
        assert wf.n_tasks == 6
        assert wf.is_fork()
        assert wf.sources == (0,)

    def test_join_shape(self):
        wf = generators.join_workflow(5, seed=1)
        assert wf.n_tasks == 6
        assert wf.is_join()
        assert wf.sinks == (5,)

    def test_fork_join_shape(self):
        wf = generators.fork_join_workflow(4, seed=2)
        assert wf.n_tasks == 6
        assert wf.sources == (0,)
        assert wf.sinks == (5,)
        assert wf.structure() is WorkflowStructure.GENERAL

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generators.fork_workflow(0)
        with pytest.raises(ValueError):
            generators.join_workflow(0)
        with pytest.raises(ValueError):
            generators.fork_join_workflow(0)


class TestDiamondAndTrees:
    def test_diamond(self):
        wf = generators.diamond_workflow(seed=0)
        assert wf.n_tasks == 4
        assert wf.sources == (0,)
        assert wf.sinks == (3,)

    def test_out_tree(self):
        wf = generators.out_tree_workflow(7, fanout=2, seed=1)
        assert wf.n_tasks == 7
        assert wf.sources == (0,)
        assert all(wf.in_degree(i) == 1 for i in range(1, 7))
        assert all(wf.out_degree(i) <= 2 for i in range(7))

    def test_in_tree(self):
        wf = generators.in_tree_workflow(7, fanin=2, seed=1)
        assert wf.n_tasks == 7
        assert wf.sinks == (6,)
        assert all(wf.out_degree(i) == 1 for i in range(6))

    def test_tree_validation(self):
        with pytest.raises(ValueError):
            generators.out_tree_workflow(3, fanout=0)
        with pytest.raises(ValueError):
            generators.in_tree_workflow(0)


class TestLayeredAndRandom:
    def test_layered_connectivity(self):
        wf = generators.layered_workflow(4, 5, density=0.4, seed=3)
        assert wf.n_tasks == 20
        # Every non-first-layer task has at least one predecessor.
        for i in range(5, 20):
            assert wf.in_degree(i) >= 1

    def test_layered_validation(self):
        with pytest.raises(ValueError):
            generators.layered_workflow(0, 3)
        with pytest.raises(ValueError):
            generators.layered_workflow(3, 3, density=1.5)

    def test_random_dag_edge_probability_extremes(self):
        empty = generators.random_dag_workflow(8, edge_probability=0.0, seed=1)
        full = generators.random_dag_workflow(8, edge_probability=1.0, seed=1)
        assert empty.n_edges == 0
        assert full.n_edges == 8 * 7 // 2

    def test_random_dag_validation(self):
        with pytest.raises(ValueError):
            generators.random_dag_workflow(5, edge_probability=-0.1)

    def test_deterministic(self):
        a = generators.layered_workflow(3, 3, seed=7)
        b = generators.layered_workflow(3, 3, seed=7)
        assert a == b


class TestPaperExample:
    def test_matches_figure_one(self):
        wf = generators.paper_example_workflow()
        assert wf.n_tasks == 8
        # The linearization discussed in the paper must be valid.
        assert wf.is_linearization((0, 3, 1, 2, 4, 5, 6, 7))
        # Entry tasks are T0 and T1; exit task is T7.
        assert set(wf.sources) == {0, 1}
        assert wf.sinks == (7,)
        # Narrative dependencies.
        assert wf.has_edge(3, 5)
        assert wf.has_edge(4, 6)
        assert wf.has_edge(5, 6)
        assert wf.has_edge(2, 7)
        assert wf.has_edge(1, 2)

    def test_mean_weight_positive(self):
        wf = generators.paper_example_workflow()
        assert all(t.weight > 0 for t in wf.tasks)
