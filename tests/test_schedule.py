"""Unit tests for :mod:`repro.core.schedule`."""

from __future__ import annotations

import pytest

from repro import Schedule
from repro.workflows import generators


@pytest.fixture
def wf():
    return generators.diamond_workflow(weights=[10.0, 20.0, 5.0, 8.0]).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )


class TestConstruction:
    def test_valid_schedule(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {1})
        assert schedule.order == (0, 1, 2, 3)
        assert schedule.checkpointed == frozenset({1})
        assert schedule.n_tasks == 4
        assert schedule.n_checkpointed == 1

    def test_other_valid_linearization(self, wf):
        schedule = Schedule(wf, (0, 2, 1, 3))
        assert schedule.order == (0, 2, 1, 3)

    def test_order_must_be_permutation(self, wf):
        with pytest.raises(ValueError):
            Schedule(wf, (0, 1, 2))
        with pytest.raises(ValueError):
            Schedule(wf, (0, 1, 2, 2))

    def test_order_must_respect_dependencies(self, wf):
        with pytest.raises(ValueError):
            Schedule(wf, (1, 0, 2, 3))
        with pytest.raises(ValueError):
            Schedule(wf, (0, 1, 3, 2))

    def test_checkpoint_indices_validated(self, wf):
        with pytest.raises(ValueError):
            Schedule(wf, (0, 1, 2, 3), {7})

    def test_workflow_type_checked(self):
        with pytest.raises(TypeError):
            Schedule("not a workflow", (0,), ())  # type: ignore[arg-type]

    def test_iteration_and_len(self, wf):
        schedule = Schedule(wf, (0, 2, 1, 3))
        assert list(schedule) == [0, 2, 1, 3]
        assert len(schedule) == 4


class TestAccessors:
    def test_positions(self, wf):
        schedule = Schedule(wf, (0, 2, 1, 3))
        assert schedule.position_of(2) == 1
        assert schedule.task_at(3) == 3
        with pytest.raises(ValueError):
            schedule.position_of(9)

    def test_is_checkpointed(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {0, 3})
        assert schedule.is_checkpointed(0)
        assert not schedule.is_checkpointed(1)


class TestDerivedSchedules:
    def test_with_checkpoints(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {1})
        other = schedule.with_checkpoints({2, 3})
        assert other.checkpointed == frozenset({2, 3})
        assert other.order == schedule.order
        assert schedule.checkpointed == frozenset({1})

    def test_with_order(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {1})
        other = schedule.with_order((0, 2, 1, 3))
        assert other.order == (0, 2, 1, 3)
        assert other.checkpointed == frozenset({1})

    def test_checkpoint_all_none(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {1})
        assert schedule.checkpoint_all().n_checkpointed == 4
        assert schedule.checkpoint_none().n_checkpointed == 0


class TestAggregates:
    def test_failure_free_makespan(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {1, 2})
        expected = (10 + 20 + 5 + 8) + (2.0 + 0.5)
        assert schedule.failure_free_makespan == pytest.approx(expected)

    def test_total_checkpoint_cost(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {0, 3})
        assert schedule.total_checkpoint_cost == pytest.approx(1.0 + 0.8)

    def test_completion_times_include_checkpoints(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3), {1})
        times = schedule.completion_times_failure_free()
        assert times == pytest.approx((10.0, 32.0, 37.0, 45.0))

    def test_completion_times_without_checkpoints(self, wf):
        schedule = Schedule(wf, (0, 1, 2, 3))
        assert schedule.completion_times_failure_free() == pytest.approx((10.0, 30.0, 35.0, 43.0))

    def test_checkpoint_sum_uses_ascending_task_index(self):
        # Regression (reprolint RL004): the checkpoint-cost aggregates used
        # to iterate the ``checkpointed`` frozenset directly, so the float
        # sum depended on hash-iteration order.  The canonical order is
        # ascending task index — pin it bit-for-bit, not approximately.
        n = 31
        weights = [1.0 + (7 * i % 13) / 9 for i in range(n)]
        wf = generators.chain_workflow(n, weights=weights).with_checkpoint_costs(
            mode="proportional", factor=1 / 3
        )
        checkpointed = set(range(0, n, 2))
        schedule = Schedule(wf, tuple(range(n)), checkpointed)

        explicit = 0.0
        for i in sorted(checkpointed):
            explicit += wf.task(i).checkpoint_cost
        assert schedule.total_checkpoint_cost == explicit
        assert schedule.failure_free_makespan == sum(weights) + explicit

    def test_describe_marks_checkpointed(self, wf):
        text = Schedule(wf, (0, 1, 2, 3), {1}).describe()
        assert "T1*" in text
        assert "T0 ->" in text


class TestEquality:
    def test_equal_schedules(self, wf):
        a = Schedule(wf, (0, 1, 2, 3), {1})
        b = Schedule(wf, (0, 1, 2, 3), {1})
        assert a == b

    def test_different_checkpoints_differ(self, wf):
        a = Schedule(wf, (0, 1, 2, 3), {1})
        b = Schedule(wf, (0, 1, 2, 3), {2})
        assert a != b
