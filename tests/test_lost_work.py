"""Unit tests for the lost-work sets (Algorithm 1, :mod:`repro.core.lost_work`)."""

from __future__ import annotations

import pytest

from repro import Schedule, compute_lost_work
from repro.core.lost_work import lost_and_needed_tasks
from repro.workflows import generators


class TestChainLostWork:
    """Hand-checked values on a small chain."""

    @pytest.fixture
    def schedule(self):
        wf = generators.chain_workflow(4, weights=[10.0, 20.0, 30.0, 40.0]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        # Checkpoint the second task (index 1, position 2).
        return Schedule(wf, (0, 1, 2, 3), {1})

    def test_row_zero_is_empty(self, schedule):
        lw = compute_lost_work(schedule)
        assert all(lw.w(0, i) == 0.0 for i in range(schedule.n_tasks + 1))
        assert all(lw.r(0, i) == 0.0 for i in range(schedule.n_tasks + 1))

    def test_diagonal_values(self, schedule):
        lw = compute_lost_work(schedule)
        # Fault during X_1: T1 has no predecessor.
        assert lw.w(1, 1) == 0.0 and lw.r(1, 1) == 0.0
        # Fault during X_2: T2's predecessor T1 (not checkpointed) must be redone.
        assert lw.w(2, 2) == pytest.approx(10.0)
        # Fault during X_3: T3's predecessor T2 is checkpointed -> recovery only.
        assert lw.w(3, 3) == 0.0
        assert lw.r(3, 3) == pytest.approx(2.0)
        # Fault during X_4: T4's predecessor T3 not checkpointed, then T2 checkpointed.
        assert lw.w(4, 4) == pytest.approx(30.0)
        assert lw.r(4, 4) == pytest.approx(2.0)

    def test_regeneration_suppresses_later_rows(self, schedule):
        lw = compute_lost_work(schedule)
        # After a fault in X_2, T1 is re-executed while finishing T2; by the time
        # T3 runs, nothing is missing (T2's fresh output is in memory).
        assert lw.w(2, 3) == 0.0 and lw.r(2, 3) == 0.0
        assert lw.w(2, 4) == 0.0 and lw.r(2, 4) == 0.0

    def test_members_sets(self, schedule):
        lw = compute_lost_work(schedule, keep_members=True)
        assert lw.lost_set(2, 2) == frozenset({1})
        assert lw.lost_set(4, 4) == frozenset({2, 3})
        assert lw.lost_set(2, 3) == frozenset()

    def test_n_tasks(self, schedule):
        assert compute_lost_work(schedule).n_tasks == 4

    def test_members_are_opt_in(self, schedule):
        # Production call sites never read the quadratic membership sets, so
        # the default computation does not build them.
        lw = compute_lost_work(schedule)
        assert lw.members is None
        with pytest.raises(ValueError, match="keep_members"):
            lw.lost_set(2, 2)


class TestPaperExample:
    """The Figure-1 narrative: failure during T5 with checkpoints on T3 and T4."""

    def test_narrative_sets(self, paper_example_schedule):
        schedule = paper_example_schedule
        lw = compute_lost_work(schedule, keep_members=True)
        pos = {t: schedule.position_of(t) + 1 for t in range(8)}

        # A fault while executing T5 (position 6): T5 needs T3's checkpoint only.
        k = pos[5]
        assert lw.lost_set(k, pos[5]) == frozenset({pos[3]})
        assert lw.r(k, pos[5]) == pytest.approx(schedule.workflow.task(3).recovery_cost)
        assert lw.w(k, pos[5]) == 0.0

        # T6 then needs T4's checkpoint (T5's output is freshly in memory).
        assert lw.lost_set(k, pos[6]) == frozenset({pos[4]})
        assert lw.r(k, pos[6]) == pytest.approx(schedule.workflow.task(4).recovery_cost)

        # T7 needs T2, which needs the entry task T1 (none checkpointed).
        assert lw.lost_set(k, pos[7]) == frozenset({pos[1], pos[2]})
        assert lw.w(k, pos[7]) == pytest.approx(
            schedule.workflow.task(1).weight + schedule.workflow.task(2).weight
        )
        assert lw.r(k, pos[7]) == 0.0

    def test_no_checkpoint_means_reexecute_from_entry(self, paper_example):
        schedule = Schedule(paper_example, (0, 3, 1, 2, 4, 5, 6, 7), ())
        lw = compute_lost_work(schedule, keep_members=True)
        # Without any checkpoint, a fault during T5 (position 6) forces the
        # re-execution of T3 and of the entry task T0 for T5.
        assert lw.lost_set(6, 6) == frozenset({1, 2})  # positions of T0 and T3
        assert lw.w(6, 6) == pytest.approx(
            paper_example.task(0).weight + paper_example.task(3).weight
        )


class TestStructuralProperties:
    def test_checkpointed_tasks_stop_upward_traversal(self):
        wf = generators.chain_workflow(5, weights=[1, 2, 3, 4, 5]).with_checkpoint_costs(
            mode="constant", value=0.5
        )
        schedule = Schedule(wf, range(5), {2})
        lw = compute_lost_work(schedule, keep_members=True)
        # Fault during X_5: tasks 4 (position 5) needs 3 (re-exec) and 2 (recover),
        # but never 0 or 1 (hidden behind the checkpoint of task 2).
        assert lw.lost_set(5, 5) == frozenset({3, 4})

    def test_fork_source_only_charged_once_per_failure(self):
        wf = generators.fork_workflow(3, source_weight=9.0, sink_weights=[1, 2, 3]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        schedule = Schedule(wf, (0, 1, 2, 3), ())
        lw = compute_lost_work(schedule)
        # Fault during X_2 (first sink): the source must be redone for that sink...
        assert lw.w(2, 2) == pytest.approx(9.0)
        # ... but not again for the following sinks (its output is back in memory).
        assert lw.w(2, 3) == 0.0
        assert lw.w(2, 4) == 0.0

    def test_values_are_non_negative_and_bounded(self):
        wf = generators.layered_workflow(4, 3, seed=3).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        schedule = Schedule(wf, wf.topological_order(), set(range(0, wf.n_tasks, 2)))
        lw = compute_lost_work(schedule)
        total_w = wf.total_weight
        total_r = sum(t.recovery_cost for t in wf.tasks)
        n = wf.n_tasks
        for k in range(n + 1):
            for i in range(n + 1):
                assert 0.0 <= lw.w(k, i) <= total_w + 1e-9
                assert 0.0 <= lw.r(k, i) <= total_r + 1e-9

    def test_subset_property_t_down_k_included_in_t_down_i(self):
        """T down-k-i is included in T down-i-i (needed for property [C])."""
        wf = generators.layered_workflow(3, 4, seed=9).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        schedule = Schedule(wf, wf.topological_order(), {1, 5, 7})
        lw = compute_lost_work(schedule)
        n = wf.n_tasks
        for i in range(1, n + 1):
            full = lw.w(i, i) + lw.r(i, i)
            for k in range(1, i + 1):
                assert lw.w(k, i) + lw.r(k, i) <= full + 1e-9


class TestLostAndNeededTasks:
    def test_everything_in_memory_needs_nothing(self, paper_example_schedule):
        schedule = paper_example_schedule
        needed, work, recovery = lost_and_needed_tasks(
            schedule, 8, frozenset(range(1, 8))
        )
        assert needed == []
        assert work == 0.0 and recovery == 0.0

    def test_empty_memory_full_closure(self, paper_example_schedule):
        schedule = paper_example_schedule
        # Task T7 is at position 8; with nothing in memory it needs T2, T1 (re-exec),
        # T6, T5, T4, T3 ... T6 is not checkpointed so its inputs are needed too.
        needed, work, recovery = lost_and_needed_tasks(schedule, 8, frozenset())
        needed_tasks = {schedule.order[p - 1] for p in needed}
        assert needed_tasks == {1, 2, 3, 4, 5, 6}
        assert recovery == pytest.approx(
            schedule.workflow.task(3).recovery_cost + schedule.workflow.task(4).recovery_cost
        )

    def test_plan_is_topologically_ordered(self, paper_example_schedule):
        schedule = paper_example_schedule
        needed, _, _ = lost_and_needed_tasks(schedule, 8, frozenset())
        assert needed == sorted(needed)

    def test_invalid_position_rejected(self, paper_example_schedule):
        with pytest.raises(ValueError):
            lost_and_needed_tasks(paper_example_schedule, 0, frozenset())
        with pytest.raises(ValueError):
            lost_and_needed_tasks(paper_example_schedule, 99, frozenset())
