"""Public API surface checks.

A downstream user interacts with the library through the names re-exported by
the top-level packages.  These tests pin that surface: every advertised name is
importable, documented, and the ``__all__`` lists are consistent — so that an
accidental rename or removal shows up as a test failure rather than as a broken
user script.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.theory",
    "repro.heuristics",
    "repro.simulation",
    "repro.workflows",
    "repro.workflows.generators",
    "repro.workflows.pegasus",
    "repro.experiments",
    "repro.analysis",
    "repro.runtime",
    "repro.cli",
]


class TestModuleSurface:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports_and_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"

    @pytest.mark.parametrize(
        "module_name",
        [m for m in PUBLIC_MODULES if m not in ("repro.cli",)],
    )
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        assert exported, f"{module_name} does not define __all__"
        for name in exported:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_is_sorted_and_unique(self, module_name):
        module = importlib.import_module(module_name)
        exported = list(getattr(module, "__all__", []))
        if not exported:
            pytest.skip("module does not define __all__")
        assert len(exported) == len(set(exported))


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    @pytest.mark.parametrize(
        "name",
        [
            "Task",
            "Workflow",
            "Platform",
            "Schedule",
            "evaluate_schedule",
            "expected_makespan",
            "compute_lost_work",
            "solve_heuristic",
            "solve_all_heuristics",
            "linearize",
            "simulate_schedule",
            "run_monte_carlo",
            "HEURISTIC_NAMES",
        ],
    )
    def test_core_names_available_at_top_level(self, name):
        assert hasattr(repro, name)

    def test_public_callables_have_docstrings(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"undocumented public callables: {missing}"

    def test_public_classes_have_docstrings(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"undocumented public classes: {missing}"


class TestSubpackageConsistency:
    def test_heuristic_names_match_registry_contents(self):
        from repro.heuristics import HEURISTIC_NAMES, parse_heuristic_name

        for name in HEURISTIC_NAMES:
            linearization, strategy = parse_heuristic_name(name)
            assert linearization in ("DF", "BF", "RF")
            assert strategy.startswith("Ckpt")

    def test_workflow_families_have_generators(self):
        from repro.workflows import pegasus

        for family in pegasus.WORKFLOW_FAMILIES:
            workflow = pegasus.generate(family, 30, seed=0)
            assert workflow.n_tasks > 0
            assert family in pegasus.AVERAGE_TASK_WEIGHTS

    def test_main_module_is_executable(self):
        import repro.__main__  # noqa: F401  (import succeeds, dispatches to cli.main)

        assert callable(repro.__main__.main)
