"""Native (compiled C) backend: equivalence, edge cases and diagnostics.

The native kernel of :mod:`repro.core.evaluator_native` must be a pure
performance knob, exactly like the numpy fast path: on any instance it has
to agree with the pure-Python reference within 1e-9 relative, saturate
overflow at the same :data:`~repro.core.expectation.OVERFLOW_EXPONENT`, and
its sweep and one-shot entry points must be bit-for-bit identical.

Every numerical test here is skipped when no C toolchain is present —
:mod:`tests.test_backend_registry` pins the graceful-degradation story for
that case.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Platform,
    Schedule,
    SweepState,
    Task,
    Workflow,
    batch_evaluate,
    evaluate_schedule,
)
from repro.cli import main
from repro.core.evaluator_native import native_available

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no C toolchain: native backend unavailable"
)


# ----------------------------------------------------------------------
# Strategies (mirrors tests/test_backend_equivalence.py)
# ----------------------------------------------------------------------
rate_strategy = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=0.05, allow_nan=False, allow_infinity=False),
)


@st.composite
def random_instance(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=300.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    edge_flags = draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    edges = []
    flag_index = 0
    for i in range(n):
        for j in range(i + 1, n):
            if edge_flags[flag_index]:
                edges.append((i, j))
            flag_index += 1
    factor = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    tasks = [Task(index=i, weight=w) for i, w in enumerate(weights)]
    workflow = Workflow(tasks, edges).with_checkpoint_costs(
        mode="proportional", factor=factor
    )
    checkpoint_flags = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    checkpointed = {i for i, flag in enumerate(checkpoint_flags) if flag}
    schedule = Schedule(workflow, range(n), checkpointed)
    processors = draw(st.integers(min_value=1, max_value=8))
    platform = Platform(
        processors=processors,
        processor_failure_rate=draw(rate_strategy) / processors,
        downtime=draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
    )
    return workflow, schedule, platform


def _assert_close(a: float, b: float, *, rel: float = 1e-9) -> None:
    if math.isinf(a) or math.isinf(b):
        assert a == b
        return
    assert abs(a - b) <= rel * max(1.0, abs(a), abs(b))


def _chain(n: int, *, weight: float = 10.0, factor: float = 0.1) -> Workflow:
    return Workflow(
        [Task(index=i, weight=weight) for i in range(n)],
        [(i, i + 1) for i in range(n - 1)],
    ).with_checkpoint_costs(mode="proportional", factor=factor)


# ----------------------------------------------------------------------
# Three-way equivalence
# ----------------------------------------------------------------------
class TestNativeEquivalence:
    @given(data=random_instance())
    @settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_three_backends_agree_within_1e9_relative(self, data):
        _, schedule, platform = data
        py = evaluate_schedule(schedule, platform, backend="python")
        np_ = evaluate_schedule(schedule, platform, backend="numpy")
        nat = evaluate_schedule(schedule, platform, backend="native")
        _assert_close(py.expected_makespan, nat.expected_makespan)
        _assert_close(np_.expected_makespan, nat.expected_makespan)
        assert py.failure_free_work == nat.failure_free_work
        _assert_close(py.failure_free_makespan, nat.failure_free_makespan)
        assert len(py.expected_task_times) == len(nat.expected_task_times)
        for a, b in zip(py.expected_task_times, nat.expected_task_times):
            _assert_close(a, b)

    @given(data=random_instance())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_batch_evaluate_native_matches_python(self, data):
        workflow, schedule, platform = data
        n = workflow.n_tasks
        order = tuple(range(n))
        sets = [frozenset(), frozenset(schedule.checkpointed), frozenset(range(n))]
        native_rows = batch_evaluate(workflow, order, sets, platform, backend="native")
        python_rows = batch_evaluate(workflow, order, sets, platform, backend="python")
        for nat, py in zip(native_rows, python_rows):
            _assert_close(py.expected_makespan, nat.expected_makespan)


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
class TestNativeEdgeCases:
    def test_failure_free_platform_is_bit_for_bit(self):
        workflow = _chain(40)
        schedule = Schedule(workflow, range(40), {9, 19, 29})
        platform = Platform(processors=4, processor_failure_rate=0.0, downtime=5.0)
        py = evaluate_schedule(schedule, platform, backend="python")
        nat = evaluate_schedule(schedule, platform, backend="native")
        # lambda = 0 delegates to the shared reference bookkeeping: exact.
        assert nat.expected_makespan == py.expected_makespan
        assert nat.expected_task_times == py.expected_task_times

    def test_empty_schedule_is_bit_for_bit(self):
        workflow = Workflow([], [])
        schedule = Schedule(workflow, [], set())
        platform = Platform(processors=1, processor_failure_rate=1e-3, downtime=0.0)
        py = evaluate_schedule(schedule, platform, backend="python")
        nat = evaluate_schedule(schedule, platform, backend="native")
        assert nat.expected_makespan == py.expected_makespan == 0.0

    def test_saturated_exponent_agrees_with_python(self):
        # lambda * (l + w + c) far beyond OVERFLOW_EXPONENT: both backends
        # clamp the exponent at the same point, so the (astronomically
        # large, possibly inf) results must still agree — never NaN.
        workflow = _chain(30, weight=1e6, factor=0.1)
        schedule = Schedule(workflow, range(30), set())
        platform = Platform(processors=1, processor_failure_rate=10.0, downtime=0.0)
        py = evaluate_schedule(schedule, platform, backend="python")
        nat = evaluate_schedule(schedule, platform, backend="native")
        assert not math.isnan(nat.expected_makespan)
        _assert_close(py.expected_makespan, nat.expected_makespan)

    def test_product_overflow_saturates_like_python(self):
        # The instance from the python/numpy suite: Equation (1)'s product
        # overflows to inf without either exponent crossing the guard.  The
        # native kernel must return inf exactly like the reference, not NaN.
        n_mid = 100
        weights = [6.45e10] + [1e9] * n_mid + [5e9]
        tasks = [Task(index=i, weight=w) for i, w in enumerate(weights)]
        wf = Workflow(tasks, [(0, n_mid + 1)]).with_checkpoint_costs(
            mode="proportional", factor=0.0
        )
        schedule = Schedule(wf, range(n_mid + 2), ())
        platform = Platform.from_platform_rate(1e-8)
        py = evaluate_schedule(schedule, platform, backend="python")
        nat = evaluate_schedule(schedule, platform, backend="native")
        assert math.isinf(py.expected_makespan)
        assert nat.expected_makespan == py.expected_makespan

    def test_single_task(self):
        workflow = _chain(1)
        schedule = Schedule(workflow, [0], {0})
        platform = Platform(processors=1, processor_failure_rate=1e-2, downtime=2.0)
        py = evaluate_schedule(schedule, platform, backend="python")
        nat = evaluate_schedule(schedule, platform, backend="native")
        _assert_close(py.expected_makespan, nat.expected_makespan)


# ----------------------------------------------------------------------
# Sweep contract
# ----------------------------------------------------------------------
class TestNativeSweep:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        toggles=st.lists(st.integers(min_value=0, max_value=39), min_size=1, max_size=12),
    )
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_sweep_is_bit_for_bit_vs_one_shot(self, seed, toggles):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = 40
        weights = rng.uniform(1.0, 60.0, size=n)
        workflow = Workflow(
            [Task(index=i, weight=float(w)) for i, w in enumerate(weights)],
            [(i, i + 1) for i in range(n - 1)],
        ).with_checkpoint_costs(mode="proportional", factor=0.1)
        platform = Platform(processors=1, processor_failure_rate=2e-3, downtime=1.0)
        state = SweepState(workflow, tuple(range(n)), platform, backend="native")
        selected: set[int] = set()
        for t in toggles:
            selected.symmetric_difference_update({t})
            swept = state.evaluate(selected)
            one_shot = evaluate_schedule(
                Schedule(workflow, range(n), selected), platform, backend="native"
            )
            assert swept.expected_makespan == one_shot.expected_makespan
            assert swept.expected_task_times == one_shot.expected_task_times

    def test_numpy_and_native_sweeps_share_instance_tables(self):
        from repro.core.sweep import _instance_tables
        import numpy as np

        workflow = _chain(50)
        order = tuple(range(50))
        platform = Platform(processors=1, processor_failure_rate=1e-3, downtime=0.0)
        np_state = SweepState(workflow, order, platform, backend="numpy")
        nat_state = SweepState(workflow, order, platform, backend="native")
        assert _instance_tables(workflow, order, np) is np_state._tables
        assert np_state._tables is nat_state._tables


# ----------------------------------------------------------------------
# `repro backends` CLI
# ----------------------------------------------------------------------
class TestBackendsCommand:
    # The module-level skip applies here too; the no-toolchain rendering of
    # the command is covered by tests/test_backend_registry.py instead.

    @pytest.fixture(autouse=True)
    def _no_ambient_backend_env(self, monkeypatch):
        # What "auto" resolves to is part of the assertions: an inherited
        # REPRO_EVAL_BACKEND (e.g. CI forcing native) must not leak in.
        from repro.core.backend import BACKEND_ENV_VAR

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)

    def test_table_lists_builtins(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("python", "numpy", "native"):
            assert name in out
        assert "auto resolves to:" in out

    def test_tasks_changes_auto(self, capsys):
        assert main(["backends", "--tasks", "10"]) == 0
        out = capsys.readouterr().out
        assert "auto resolves to: python" in out

    def test_json_payload(self, capsys):
        assert main(["backends", "--tasks", "500", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_tasks"] == 500
        assert payload["auto"] == "native"
        rows = {row["name"]: row for row in payload["backends"]}
        assert rows["native"]["available"] is True
        assert rows["python"]["capabilities"] == [
            "batch_evaluate", "evaluate", "monte_carlo", "sweep",
        ]
