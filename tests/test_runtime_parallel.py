"""Tests for the deterministic parallel map (repro.runtime.parallel)."""

from __future__ import annotations

import math
import os

import pytest

from repro.runtime import (
    WorkerFailure,
    deterministic_chunksize,
    parallel_map,
    resolve_jobs,
)


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_none_and_zero_mean_all_cpus(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestDeterministicChunksize:
    def test_pure_function_of_inputs(self):
        assert deterministic_chunksize(100, 4) == deterministic_chunksize(100, 4)

    def test_bounds(self):
        assert deterministic_chunksize(0, 4) == 1
        assert deterministic_chunksize(1, 8) == 1
        assert deterministic_chunksize(10_000, 1) == 32  # capped

    def test_roughly_four_chunks_per_worker(self):
        assert deterministic_chunksize(64, 4) == 4


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        result = parallel_map(str.upper, ["a", "b", "c"], jobs=1)
        assert result == ["A", "B", "C"]

    def test_serial_on_result_callback_in_order(self):
        seen = []
        parallel_map(str.upper, ["a", "b"], jobs=1,
                     on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, "A"), (1, "B")]

    def test_parallel_matches_serial(self):
        values = list(range(40))
        serial = parallel_map(math.sqrt, values, jobs=1)
        parallel = parallel_map(math.sqrt, values, jobs=2)
        assert parallel == serial

    def test_parallel_on_result_delivers_every_item(self):
        # Completion order is not guaranteed under jobs>1, but every item
        # must be reported exactly once with its input index.
        seen = []
        parallel_map(math.sqrt, [4.0, 9.0, 16.0], jobs=2,
                     on_result=lambda i, r: seen.append((i, r)))
        assert sorted(seen) == [(0, 2.0), (1, 3.0), (2, 4.0)]

    def test_parallel_failure_still_delivers_completed_results(self):
        # A failing unit must not discard sibling results: every non-failing
        # chunk is gathered (and reported) before the error propagates.
        seen = []
        with pytest.raises(WorkerFailure) as excinfo:
            parallel_map(math.sqrt, [4.0, "x", 16.0, 25.0], jobs=2,
                         chunksize=1, on_result=lambda i, r: seen.append(i))
        assert sorted(seen) == [0, 2, 3]
        failure = excinfo.value
        assert failure.unit_index == 1
        assert failure.kind == "error"
        assert failure.attempts == 1
        assert isinstance(failure.__cause__, TypeError)

    def test_serial_failure_raises_the_original_exception(self):
        # jobs=1 is the reference path: no supervision wrapper, the unit's
        # own exception propagates unchanged.
        with pytest.raises(TypeError):
            parallel_map(math.sqrt, [4.0, "x"], jobs=1)

    def test_empty_input(self):
        assert parallel_map(str.upper, [], jobs=4) == []

    def test_worker_count_never_exceeds_items(self):
        # jobs=8 with 2 items must still work (pool sized down to 2).
        assert parallel_map(str.upper, ["x", "y"], jobs=8) == ["X", "Y"]
