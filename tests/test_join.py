"""Tests for the join-DAG results (Lemmas 1-2, Corollaries 1-2)."""

from __future__ import annotations

import itertools
import math

import pytest

from repro import Platform, evaluate_schedule
from repro.theory import (
    g_priority,
    join_expected_makespan,
    join_schedule,
    optimal_join_order,
    optimal_schedule,
    solve_join_equal_costs,
)
from repro.workflows import generators


@pytest.fixture
def join_wf():
    return generators.join_workflow(
        4, sink_weight=5.0, source_weights=[12.0, 30.0, 7.0, 18.0]
    ).with_checkpoint_costs(mode="proportional", factor=0.15)


@pytest.fixture
def platform():
    return Platform.from_platform_rate(1.2e-2, downtime=1.0)


class TestValidation:
    def test_rejects_non_join(self, platform):
        wf = generators.fork_workflow(3, seed=0)
        with pytest.raises(ValueError):
            join_expected_makespan(wf, platform, ())
        with pytest.raises(ValueError):
            optimal_join_order(wf, platform, ())

    def test_rejects_checkpointing_unknown_tasks(self, join_wf, platform):
        with pytest.raises(ValueError):
            optimal_join_order(join_wf, platform, {17})


class TestOrdering:
    def test_checkpointed_sources_come_first_sorted_by_g(self, join_wf, platform):
        order = optimal_join_order(join_wf, platform, {0, 1, 3})
        sink = join_wf.sinks[0]
        assert order[-1] == sink
        ckpt_prefix = order[:3]
        assert set(ckpt_prefix) == {0, 1, 3}
        g_values = [g_priority(join_wf, i, platform) for i in ckpt_prefix]
        assert g_values == sorted(g_values, reverse=True)

    def test_g_priority_formula(self, join_wf, platform):
        task = join_wf.task(1)
        lam = platform.failure_rate
        expected = (
            math.exp(-lam * (task.weight + task.checkpoint_cost + task.recovery_cost))
            + math.exp(-lam * task.recovery_cost)
            - math.exp(-lam * (task.weight + task.checkpoint_cost))
        )
        assert g_priority(join_wf, 1, platform) == pytest.approx(expected)

    def test_g_order_is_optimal_among_permutations(self, join_wf, platform):
        """Lemma 2: no permutation of the checkpointed sources beats the g order."""
        checkpointed = {0, 1, 3}
        best = join_expected_makespan(join_wf, platform, checkpointed)
        for perm in itertools.permutations(checkpointed):
            value = join_expected_makespan(join_wf, platform, checkpointed, order=perm)
            assert value >= best - 1e-9

    def test_checkpointing_the_sink_is_ignored(self, join_wf, platform):
        schedule = join_schedule(join_wf, platform, {0, join_wf.sinks[0]})
        assert join_wf.sinks[0] not in schedule.checkpointed


class TestEquationTwo:
    def test_failure_free_value(self, join_wf):
        platform = Platform.failure_free()
        value = join_expected_makespan(join_wf, platform, {0, 1})
        expected = join_wf.total_weight + join_wf.task(0).checkpoint_cost + join_wf.task(1).checkpoint_cost
        assert value == pytest.approx(expected)

    def test_no_checkpoints_reduces_to_single_segment(self, join_wf, platform):
        value = join_expected_makespan(join_wf, platform, ())
        schedule = join_schedule(join_wf, platform, ())
        assert value == pytest.approx(evaluate_schedule(schedule, platform).expected_makespan)

    @pytest.mark.parametrize("checkpoints", [(), (2,), (0, 1), (0, 1, 2, 3)])
    def test_matches_general_evaluator(self, join_wf, platform, checkpoints):
        analytical = join_expected_makespan(join_wf, platform, checkpoints)
        schedule = join_schedule(join_wf, platform, checkpoints)
        general = evaluate_schedule(schedule, platform).expected_makespan
        assert analytical == pytest.approx(general, rel=1e-9)


class TestCorollaryOne:
    def test_requires_equal_costs(self, platform):
        wf = generators.join_workflow(3, source_weights=[5, 6, 7], sink_weight=2.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        with pytest.raises(ValueError):
            solve_join_equal_costs(wf, platform)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce(self, seed, platform):
        wf = generators.join_workflow(4, seed=seed, mean_weight=25.0, sink_weight=10.0).with_checkpoint_costs(
            mode="constant", value=2.0
        )
        solution = solve_join_equal_costs(wf, platform)
        brute = optimal_schedule(wf, platform)
        assert solution.expected_makespan == pytest.approx(brute.expected_makespan, rel=1e-9)

    def test_no_failures_means_no_checkpoints(self):
        wf = generators.join_workflow(4, seed=1, mean_weight=25.0).with_checkpoint_costs(
            mode="constant", value=2.0
        )
        solution = solve_join_equal_costs(wf, Platform.failure_free())
        assert solution.checkpointed_sources == frozenset()

    def test_heavy_failures_checkpoint_everything(self):
        wf = generators.join_workflow(
            4, source_weights=[100, 120, 90, 110], sink_weight=10.0
        ).with_checkpoint_costs(mode="constant", value=1.0)
        solution = solve_join_equal_costs(wf, Platform.from_platform_rate(5e-2))
        assert solution.checkpointed_sources == frozenset({0, 1, 2, 3})


class TestCorollaryTwo:
    def test_zero_recovery_order_does_not_matter(self):
        """Corollary 2: with r_i = 0, any order of the checkpointed set is equivalent."""
        wf = generators.join_workflow(
            4, source_weights=[9, 14, 4, 22], sink_weight=3.0
        ).with_checkpoint_costs(mode="proportional", factor=0.1, recovery="zero")
        platform = Platform.from_platform_rate(2e-2)
        checkpointed = {0, 1, 3}
        values = {
            round(join_expected_makespan(wf, platform, checkpointed, order=perm), 9)
            for perm in itertools.permutations(checkpointed)
        }
        assert len(values) == 1

    def test_zero_recovery_closed_form(self):
        """Equation (3) written out explicitly."""
        wf = generators.join_workflow(
            3, source_weights=[10, 20, 30], sink_weight=5.0
        ).with_checkpoint_costs(mode="proportional", factor=0.1, recovery="zero")
        lam = 1e-2
        platform = Platform.from_platform_rate(lam)
        checkpointed = {1}
        w_nc = 10 + 30 + 5
        expected = (1 / lam) * (
            (math.exp(lam * (20 + 2.0)) - 1) + (math.exp(lam * w_nc) - 1)
        )
        assert join_expected_makespan(wf, platform, checkpointed) == pytest.approx(expected)
