"""Tests for the schedule analysis utilities (breakdown, utilities, comparisons)."""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, evaluate_schedule
from repro.analysis import (
    analyse_schedule,
    checkpoint_utilities,
    compare_schedules,
    failure_rate_sensitivity,
)
from repro.workflows import generators, pegasus


@pytest.fixture
def schedule():
    wf = generators.chain_workflow(5, weights=[10, 40, 20, 30, 15]).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    return Schedule(wf, range(5), {1, 3})


@pytest.fixture
def platform():
    return Platform.from_platform_rate(5e-3, downtime=2.0)


class TestBreakdown:
    def test_totals_are_consistent(self, schedule, platform):
        breakdown = analyse_schedule(schedule, platform)
        evaluation = evaluate_schedule(schedule, platform)
        assert breakdown.expected_makespan == pytest.approx(evaluation.expected_makespan)
        assert breakdown.useful_work == pytest.approx(schedule.workflow.total_weight)
        assert breakdown.checkpoint_time == pytest.approx(schedule.total_checkpoint_cost)
        assert breakdown.expected_waste == pytest.approx(
            evaluation.expected_makespan
            - schedule.workflow.total_weight
            - schedule.total_checkpoint_cost
        )
        assert 0.0 <= breakdown.waste_fraction < 1.0

    def test_per_task_entries(self, schedule, platform):
        breakdown = analyse_schedule(schedule, platform)
        assert len(breakdown.per_task) == 5
        total = sum(entry.expected_time for entry in breakdown.per_task)
        assert total == pytest.approx(breakdown.expected_makespan)
        for entry in breakdown.per_task:
            assert entry.expected_time >= entry.failure_free_time - 1e-9
            assert entry.overhead_ratio >= 1.0 - 1e-12
            assert entry.checkpointed == (entry.task_index in schedule.checkpointed)

    def test_failure_free_platform_has_zero_waste(self, schedule):
        breakdown = analyse_schedule(schedule, Platform.failure_free())
        assert breakdown.expected_waste == pytest.approx(0.0)
        assert breakdown.waste_fraction == pytest.approx(0.0)

    def test_worst_tasks_sorted(self, schedule, platform):
        breakdown = analyse_schedule(schedule, platform)
        worst = breakdown.worst_tasks(3)
        overheads = [entry.expected_overhead for entry in worst]
        assert overheads == sorted(overheads, reverse=True)

    def test_render_mentions_key_quantities(self, schedule, platform):
        text = analyse_schedule(schedule, platform).render(top=2)
        assert "expected makespan" in text
        assert "expected waste" in text
        assert "T1" in text or "T3" in text


class TestCheckpointUtilities:
    def test_one_entry_per_checkpoint(self, schedule, platform):
        utilities = checkpoint_utilities(schedule, platform)
        assert {u.task_index for u in utilities} == set(schedule.checkpointed)

    def test_utility_matches_direct_evaluation(self, schedule, platform):
        utilities = {u.task_index: u for u in checkpoint_utilities(schedule, platform)}
        base = evaluate_schedule(schedule, platform).expected_makespan
        for task_index, utility in utilities.items():
            without = schedule.with_checkpoints(schedule.checkpointed - {task_index})
            expected = evaluate_schedule(without, platform).expected_makespan - base
            assert utility.utility == pytest.approx(expected)

    def test_useful_checkpoint_has_positive_utility(self, platform):
        wf = generators.chain_workflow(4, weights=[100, 100, 100, 100]).with_checkpoint_costs(
            mode="proportional", factor=0.02
        )
        schedule = Schedule(wf, range(4), {1})
        (utility,) = checkpoint_utilities(schedule, platform)
        assert utility.utility > 0.0

    def test_useless_checkpoint_has_negative_utility(self):
        wf = generators.chain_workflow(3, weights=[10, 10, 10]).with_checkpoint_costs(
            mode="constant", value=5.0
        )
        schedule = Schedule(wf, range(3), {0})
        (utility,) = checkpoint_utilities(schedule, Platform.failure_free())
        assert utility.utility == pytest.approx(-5.0)

    def test_empty_checkpoint_set(self, platform):
        wf = generators.chain_workflow(3, seed=1).with_checkpoint_costs(mode="proportional", factor=0.1)
        assert checkpoint_utilities(Schedule(wf, range(3), ()), platform) == ()


class TestCompareSchedules:
    def test_ranks_schedules(self, platform):
        wf = pegasus.montage(25, seed=3).with_checkpoint_costs(mode="proportional", factor=0.1)
        order = wf.topological_order()
        comparison = compare_schedules(
            {
                "never": Schedule(wf, order, ()),
                "always": Schedule(wf, order, range(wf.n_tasks)),
                "half": Schedule(wf, order, range(0, wf.n_tasks, 2)),
            },
            Platform.from_platform_rate(1e-3),
        )
        assert set(comparison.expected_makespans) == {"never", "always", "half"}
        best = comparison.best_name
        assert comparison.gap_to_best(best) == pytest.approx(0.0)
        assert all(comparison.gap_to_best(name) >= 0.0 for name in comparison.expected_makespans)
        text = comparison.render()
        assert "vs best" in text and "never" in text

    def test_rejects_empty_and_mixed_workflows(self, platform):
        with pytest.raises(ValueError):
            compare_schedules({}, platform)
        wf_a = generators.chain_workflow(3, weights=[1, 2, 3])
        wf_b = generators.chain_workflow(3, weights=[4, 5, 6])
        with pytest.raises(ValueError):
            compare_schedules(
                {"a": Schedule(wf_a, range(3), ()), "b": Schedule(wf_b, range(3), ())},
                platform,
            )

    def test_equal_workflow_objects_allowed(self, platform):
        wf_a = generators.chain_workflow(3, weights=[1, 2, 3])
        wf_b = generators.chain_workflow(3, weights=[1, 2, 3])
        comparison = compare_schedules(
            {"a": Schedule(wf_a, range(3), ()), "b": Schedule(wf_b, range(3), {1})},
            platform,
        )
        assert len(comparison.expected_makespans) == 2


class TestSensitivity:
    def test_monotone_in_failure_rate(self, schedule, platform):
        points = failure_rate_sensitivity(schedule, platform, factors=(0.5, 1.0, 2.0, 4.0))
        makespans = [p.expected_makespan for p in points]
        assert makespans == sorted(makespans)
        assert points[1].expected_makespan == pytest.approx(
            evaluate_schedule(schedule, platform).expected_makespan
        )

    def test_zero_factor_gives_failure_free(self, schedule, platform):
        (point,) = failure_rate_sensitivity(schedule, platform, factors=(0.0,))
        assert point.expected_makespan == pytest.approx(schedule.failure_free_makespan)

    def test_validation(self, schedule, platform):
        with pytest.raises(ValueError):
            failure_rate_sensitivity(schedule, platform, factors=())
        with pytest.raises(ValueError):
            failure_rate_sensitivity(schedule, platform, factors=(-1.0,))
