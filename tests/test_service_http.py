"""End-to-end tests of the `repro serve` daemon (repro.service.app).

A real :class:`BackgroundServer` on an ephemeral port, spoken to over real
sockets with :mod:`http.client` — the same path a curl session or the load
benchmark takes.  The headline assertions: daemon responses are bit-for-bit
the direct library results, and N concurrent same-family solves cost fewer
sweep passes than N.
"""

from __future__ import annotations

import http.client
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import solve_heuristic
from repro.heuristics.registry import heuristic_rng
from repro.heuristics.search import candidate_counts
from repro.service import BackgroundServer, ServiceConfig
from repro.workflows import pegasus
from repro.workflows.serialization import schedule_to_dict


@pytest.fixture(scope="module")
def server():
    # A small batch window lets near-simultaneous test requests coalesce
    # into one batch (the production default is 0 for lowest latency).
    config = ServiceConfig(port=0, workers=2, batch_window=0.1)
    with BackgroundServer(config) as running:
        yield running


def request(server, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(raw)
        return response.status, raw.decode("utf-8")
    finally:
        conn.close()


def solve_payload(**overrides):
    payload = {"family": "montage", "n_tasks": 20, "seed": 1, "heuristic": "DF-CkptW"}
    payload.update(overrides)
    return payload


class TestBasicEndpoints:
    def test_healthz(self, server):
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"]

    def test_unknown_route_404(self, server):
        status, payload = request(server, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not-found"

    def test_invalid_json_body_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/v1/solve", body="{not json", headers={})
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad-request"

    def test_validation_error_maps_to_400_with_code(self, server):
        status, payload = request(
            server, "POST", "/v1/solve", solve_payload(family="unknown-family")
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request"
        assert "unknown workflow family" in payload["error"]["message"]

    def test_keep_alive_serves_two_requests_on_one_connection(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(2):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestSolve:
    def test_solve_is_bit_identical_to_direct_call(self, server):
        status, payload = request(
            server, "POST", "/v1/solve", solve_payload(include_schedule=True)
        )
        assert status == 200
        workflow = pegasus.montage(20, seed=1).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        from repro import Platform

        platform = Platform.from_platform_rate(1e-3)
        reference = solve_heuristic(
            workflow,
            platform,
            "DF-CkptW",
            rng=heuristic_rng(1, "DF-CkptW"),
            counts=candidate_counts(workflow.n_tasks, mode="exhaustive"),
        )
        assert payload["expected_makespan"] == reference.expected_makespan
        assert payload["overhead_ratio"] == reference.overhead_ratio
        assert payload["schedule"]["checkpointed"] == sorted(
            reference.schedule.checkpointed
        )

    def test_repeat_solve_hits_the_cache(self, server):
        body = solve_payload(heuristic="DF-CkptC")
        status1, first = request(server, "POST", "/v1/solve", body)
        status2, second = request(server, "POST", "/v1/solve", body)
        assert status1 == status2 == 200
        assert second["cache"] == "cache"
        assert second["expected_makespan"] == first["expected_makespan"]
        assert second["cache_key"] == first["cache_key"]

    def test_concurrent_same_family_solves_share_sweep_passes(self, server):
        """The acceptance bar: N same-family solves, fewer than N passes."""
        heuristics = ["DF-CkptW", "DF-CkptC", "DF-CkptD", "DF-CkptPer"]
        bodies = [
            solve_payload(family="cybershake", n_tasks=25, seed=7, heuristic=h)
            for h in heuristics
        ]
        before = scrape_counters(server)
        with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
            responses = list(
                pool.map(lambda b: request(server, "POST", "/v1/solve", b), bodies)
            )
        assert all(status == 200 for status, _ in responses)
        assert all(payload["cache"] != "cache" for _, payload in responses)
        after = scrape_counters(server)
        passes = after["repro_solve_sweep_passes_total"] - before[
            "repro_solve_sweep_passes_total"
        ]
        # All four DF searches over one family linearization share sweeps:
        # strictly fewer passes than requests regardless of batch timing.
        assert 1 <= passes < len(bodies)

    def test_async_job_lifecycle(self, server):
        status, job = request(
            server,
            "POST",
            "/v1/solve",
            solve_payload(heuristic="DF-CkptPer", **{"async": True}),
        )
        assert status == 202
        job_id = job["job_id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, record = request(server, "GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if record["status"] == "done":
                assert record["result"]["expected_makespan"] > 0
                break
            time.sleep(0.05)
        else:
            pytest.fail("async job never finished")

    def test_unknown_job_404(self, server):
        status, payload = request(server, "GET", "/v1/jobs/deadbeef")
        assert status == 404
        assert payload["error"]["code"] == "not-found"


class TestEvaluateAnalyse:
    @pytest.fixture(scope="class")
    def schedule_payload(self):
        workflow = pegasus.montage(15, seed=2).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        from repro import Platform

        platform = Platform.from_platform_rate(1e-3)
        result = solve_heuristic(
            workflow,
            platform,
            "DF-CkptW",
            rng=heuristic_rng(2, "DF-CkptW"),
            counts=candidate_counts(workflow.n_tasks, mode="exhaustive"),
        )
        return schedule_to_dict(result.schedule)

    def test_evaluate_round_trip(self, server, schedule_payload):
        status, payload = request(
            server,
            "POST",
            "/v1/evaluate",
            {"schedule": schedule_payload, "failure_rate": 1e-3},
        )
        assert status == 200
        assert payload["expected_makespan"] > 0
        assert payload["overhead_ratio"] >= 1.0

    def test_analyse_round_trip(self, server, schedule_payload):
        status, payload = request(
            server,
            "POST",
            "/v1/analyse",
            {
                "schedule": schedule_payload,
                "failure_rate": 1e-3,
                "top": 2,
                "utilities": True,
            },
        )
        assert status == 200
        assert len(payload["worst_tasks"]) <= 2
        assert "utilities" in payload

    def test_evaluate_rejects_garbage_schedule(self, server):
        status, payload = request(
            server, "POST", "/v1/evaluate", {"schedule": {"bogus": 1}}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-request"


class TestMetricsEndpoint:
    def test_prometheus_text_with_required_series(self, server):
        # make sure at least one solve happened before scraping
        request(server, "POST", "/v1/solve", solve_payload())
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            content_type = response.getheader("Content-Type", "")
        finally:
            conn.close()
        assert response.status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_solve_latency_seconds histogram" in text
        assert 'repro_solve_latency_seconds_bucket{le="+Inf"}' in text
        assert "repro_cache_hit_rate" in text
        assert "repro_queue_depth" in text
        assert "repro_solve_cache_hits_total" in text
        assert 'repro_requests_total{endpoint="/v1/solve",status="200"}' in text

    def test_latency_histogram_counts_solves(self, server):
        before = scrape_counters(server)
        request(server, "POST", "/v1/solve", solve_payload(seed=99))
        after = scrape_counters(server)
        assert (
            after["repro_solve_latency_seconds_count"]
            > before.get("repro_solve_latency_seconds_count", 0)
        )


def scrape_counters(server) -> dict[str, float]:
    """Parse unlabelled samples of /metrics into a name -> value dict."""
    status, text = request(server, "GET", "/metrics")
    assert status == 200
    values: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("#") or "{" in line:
            continue
        name, _, value = line.rpartition(" ")
        if name:
            values[name] = float(value)
    return values
