"""Chaos suite of the distributed campaign fabric.

Covers the full robustness stack the fabric adds:

* the shared :class:`RetryPolicy` (capped exponential, deterministic jitter);
* the TTL lease queue — grant/renew/expire/reassign/poison lifecycle under a
  fake clock, plus idempotent owner-agnostic completion;
* the cache-net layer — protocol round-trip, injected network faults retried,
  circuit-breaker degradation to the local cache and back-fill on reconnect;
* the fabric end-to-end — multi-worker runs byte-identical to serial, lease
  fault sites survivable, poison shards quarantined with exit code 3, and a
  crashed coordinator resuming from its journal;
* a subprocess gate: a ``repro fabric work`` process SIGKILL-alike'd
  mid-shard while a peer finishes the campaign, report unchanged.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import run_campaign
from repro.experiments.fabric import (
    ControlClient,
    FabricCoordinator,
    FabricError,
    FabricSpec,
    FabricWorker,
)
from repro.experiments.reporting import read_shard_marker, rows_from_csv, rows_to_csv
from repro.runtime import (
    DONE,
    FAULTS_ENV,
    LEASED,
    PENDING,
    POISON,
    CampaignJournal,
    DiskCache,
    LeaseQueue,
    ResultCache,
    RetryPolicy,
    fault_fired,
)
from repro.runtime.cachenet import (
    CacheNetClient,
    CacheNetError,
    CacheNetServer,
    CircuitBreaker,
    FallbackResultCache,
)

SPEC = FabricSpec(
    families=("montage",),
    sizes=(10, 20),
    seeds=(0,),
    heuristics=("DF-CkptNvr", "DF-CkptW"),
    max_candidates=5,
    n_shards=2,
)


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _serial_result():
    return run_campaign(
        SPEC.scenarios(),
        seeds=SPEC.seeds,
        search_mode=SPEC.search_mode,
        max_candidates=SPEC.max_candidates,
    )


def _drive(coordinator: FabricCoordinator, n_workers: int = 2, **worker_kwargs):
    """Run ``n_workers`` in-process workers against a started coordinator."""
    workers = [
        FabricWorker(coordinator.endpoint, name=f"w{i}", poll=0.02, **worker_kwargs)
        for i in range(n_workers)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
    for thread in threads:
        thread.start()
    coordinator.serve(timeout=120)
    for thread in threads:
        thread.join(timeout=10)
    return workers


class TestRetryPolicy:
    def test_capped_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.5, max_delay=4.0)
        assert policy.delays() == [0.5, 1.0, 2.0, 4.0, 4.0]
        assert policy.retries == 5

    def test_zero_base_disables_sleeping(self):
        policy = RetryPolicy(base_delay=0.0, jitter=0.5)
        assert policy.delay(1) == 0.0
        slept: list[float] = []
        assert policy.sleep(1, sleep=slept.append) == 0.0
        assert slept == []  # a zero delay must not even call sleep

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=30.0,
                        jitter=0.5, seed=7)
        b = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=30.0,
                        jitter=0.5, seed=7)
        assert a.delays() == b.delays()  # reproducible failure paths
        for k in range(1, 5):
            bare = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=30.0)
            assert bare.delay(k) <= a.delay(k) <= bare.delay(k) * 1.5

    def test_distinct_seeds_decorrelate(self):
        a = RetryPolicy(jitter=1.0, seed=1, max_attempts=4)
        b = RetryPolicy(jitter=1.0, seed=2, max_attempts=4)
        assert a.delays() != b.delays()

    def test_jitter_never_exceeds_cap(self):
        policy = RetryPolicy(max_attempts=8, base_delay=1.0, max_delay=2.0,
                             jitter=1.0, seed=3)
        assert all(delay <= 2.0 for delay in policy.delays())

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_sleep_reports_and_uses_the_delay(self):
        policy = RetryPolicy(base_delay=0.25)
        slept: list[float] = []
        assert policy.sleep(2, sleep=slept.append) == 0.5
        assert slept == [0.5]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLeaseQueue:
    def test_grants_lowest_pending_shard(self):
        queue = LeaseQueue(3, ttl=10.0)
        lease = queue.grant("w1")
        assert (lease.shard, lease.state, lease.owner) == (1, LEASED, "w1")
        assert queue.grant("w2").shard == 2

    def test_heartbeat_renewal_keeps_a_slow_worker_alive(self):
        clock = FakeClock()
        queue = LeaseQueue(1, ttl=10.0, clock=clock)
        queue.grant("w1")
        for _ in range(5):
            clock.advance(8.0)  # always inside the (renewed) TTL
            assert queue.renew("w1", 1)
            assert queue.expire() == []
        assert queue.snapshot()[1] == (LEASED, "w1", 1)
        assert queue.renewals == 5

    def test_expired_lease_is_reassigned_to_the_next_worker(self):
        clock = FakeClock()
        queue = LeaseQueue(1, ttl=10.0, max_attempts=3, clock=clock)
        queue.grant("dead")
        clock.advance(10.1)
        assert queue.expire() == [1]
        assert queue.snapshot()[1] == (PENDING, None, 1)
        lease = queue.grant("alive")
        assert (lease.owner, lease.attempts) == ("alive", 2)
        assert queue.expirations == 1 and queue.reassignments == 1

    def test_renew_refused_after_reassignment(self):
        clock = FakeClock()
        queue = LeaseQueue(1, ttl=5.0, clock=clock)
        queue.grant("slow")
        clock.advance(6.0)
        queue.grant("fast")  # grant() sweeps expired leases itself
        assert not queue.renew("slow", 1)
        assert queue.renew("fast", 1)

    def test_poison_after_exhausting_the_grant_budget(self):
        clock = FakeClock()
        queue = LeaseQueue(2, ttl=1.0, max_attempts=2, clock=clock)
        for _ in range(2):
            queue.grant("crashy")
            clock.advance(1.1)
            queue.expire()
        snapshot = queue.snapshot()
        assert snapshot[1] == (POISON, None, 2)
        assert snapshot[2] == (PENDING, None, 0)  # healthy shard untouched
        [poisoned] = queue.poisoned
        assert "shard 1/2 failed after 2 attempt(s)" in poisoned.describe()
        assert "worker dead or stalled" in poisoned.describe()

    def test_fail_reports_keep_the_cause_for_the_quarantine_report(self):
        queue = LeaseQueue(1, ttl=10.0, max_attempts=1)
        queue.grant("w")
        state = queue.fail("w", 1, {"type": "RuntimeError", "message": "boom"})
        assert state == POISON
        [poisoned] = queue.poisoned
        assert "RuntimeError: boom" in poisoned.describe()

    def test_completion_is_owner_agnostic_and_idempotent(self):
        clock = FakeClock()
        queue = LeaseQueue(1, ttl=5.0, clock=clock)
        queue.grant("slow")
        clock.advance(6.0)
        queue.grant("fast")
        # The expired owner finishes anyway: deterministic shards make its
        # late result byte-identical, so first completion wins ...
        assert queue.complete("slow", 1)
        # ... and the reassigned copy's arrival is acknowledged, not counted.
        assert not queue.complete("fast", 1)
        assert queue.completions == 1
        assert queue.finished

    def test_late_completion_promotes_a_poisoned_shard(self):
        queue = LeaseQueue(1, ttl=10.0, max_attempts=1)
        queue.grant("w")
        queue.fail("w", 1)
        assert queue.poisoned
        assert queue.complete("w", 1)
        assert queue.done == [1] and not queue.poisoned

    def test_mark_done_supports_journal_replay(self):
        queue = LeaseQueue(2, ttl=10.0)
        queue.mark_done(1)
        assert queue.grant("w").shard == 2
        assert not queue.finished
        queue.complete("w", 2)
        assert queue.finished

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseQueue(0)
        with pytest.raises(ValueError):
            LeaseQueue(1, ttl=0)
        with pytest.raises(ValueError):
            LeaseQueue(1, max_attempts=0)
        queue = LeaseQueue(1)
        with pytest.raises(ValueError):
            queue.complete("w", 9)


class TestCacheNet:
    def test_roundtrip_and_stats(self, tmp_path):
        server = CacheNetServer(DiskCache(tmp_path / "net.sqlite")).start()
        try:
            with CacheNetClient(server.endpoint) as client:
                assert client.ping()
                assert client.get("k1") is None
                client.put("k1", {"rows": [1, 2]})
                assert client.get("k1") == {"rows": [1, 2]}
                assert client.stats()["entries"] == 1
        finally:
            server.stop()

    def test_injected_network_fault_is_retried(self, tmp_path, monkeypatch):
        server = CacheNetServer(DiskCache(tmp_path / "net.sqlite")).start()
        try:
            client = CacheNetClient(
                server.endpoint,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            )
            monkeypatch.setenv(FAULTS_ENV, "cache_net_send:times=1")
            client.put("k", {"v": 1})
            assert client.retries == 1
            monkeypatch.setenv(FAULTS_ENV, "cache_net_recv:times=1")
            assert client.get("k") == {"v": 1}
            assert fault_fired("cache_net_recv")
            client.close()
        finally:
            server.stop()

    def test_persistent_fault_exhausts_retries(self, tmp_path, monkeypatch):
        server = CacheNetServer(DiskCache(tmp_path / "net.sqlite")).start()
        try:
            client = CacheNetClient(
                server.endpoint,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            )
            monkeypatch.setenv(FAULTS_ENV, "cache_net_send")
            with pytest.raises(CacheNetError):
                client.put("k", {"v": 1})
            client.close()
        finally:
            server.stop()

    def test_degradation_and_backfill_cycle(self, tmp_path):
        """The headline contract: server dies -> local-only; back -> backfill."""
        port = _free_port()
        server = CacheNetServer(
            DiskCache(tmp_path / "a.sqlite"), port=port
        ).start()
        cache = FallbackResultCache(
            CacheNetClient(
                f"127.0.0.1:{port}",
                timeout=1.0,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            ),
            ResultCache(),
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout=0.1),
        )
        cache.put("k1", {"v": 1})
        assert not cache.degraded
        server.stop()  # the remote store "crashes"
        cache.put("k2", {"v": 2})
        cache.put("k3", {"v": 3})
        assert cache.degraded
        assert cache.get("k2") == {"v": 2}  # local layer still serves
        assert cache.backlog == 2  # both degraded puts queued for back-fill
        # The server comes back (fresh store, same endpoint) ...
        revived = CacheNetServer(
            DiskCache(tmp_path / "b.sqlite"), port=port
        ).start()
        try:
            time.sleep(0.15)  # past the breaker's reset timeout
            cache.put("k4", {"v": 4})  # half-open probe succeeds -> backfill
            assert not cache.degraded
            assert cache.backlog == 0
            with CacheNetClient(f"127.0.0.1:{port}") as probe:
                for key, value in (("k2", 2), ("k3", 3), ("k4", 4)):
                    assert probe.get(key) == {"v": value}
            assert cache.backfilled >= 2
        finally:
            revived.stop()
            cache.close()

    def test_remote_hit_promotes_into_the_local_layer(self, tmp_path):
        server = CacheNetServer(DiskCache(tmp_path / "net.sqlite")).start()
        try:
            with CacheNetClient(server.endpoint) as warm:
                warm.put("k", {"v": 9})
            local = ResultCache()
            cache = FallbackResultCache(CacheNetClient(server.endpoint), local)
            assert cache.get("k") == {"v": 9}
            assert local.get("k") == {"v": 9}
            assert cache.remote_hits == 1
            cache.close()
        finally:
            server.stop()


class TestFabricSpec:
    def test_payload_roundtrip_is_lossless(self):
        assert FabricSpec.from_payload(SPEC.to_payload()) == SPEC

    def test_unknown_payload_field_rejected(self):
        payload = SPEC.to_payload() | {"backend": "numpy"}
        with pytest.raises(ValueError, match="unknown fabric spec field"):
            FabricSpec.from_payload(payload)

    def test_digest_tracks_content_only(self):
        assert SPEC.content_digest() == FabricSpec.from_payload(
            SPEC.to_payload()
        ).content_digest()
        assert SPEC.content_digest() != SPEC.with_updates(
            seeds=(0, 1)
        ).content_digest()

    def test_empty_heuristics_normalize_to_all(self):
        from repro.heuristics import HEURISTIC_NAMES

        assert FabricSpec(heuristics=()).heuristics == tuple(HEURISTIC_NAMES)

    def test_shards_partition_the_grid(self):
        scenarios = SPEC.scenarios()
        sharded = [s for k in (1, 2) for s in SPEC.shard(k)]
        assert sorted(map(repr, sharded)) == sorted(map(repr, scenarios))

    def test_validation(self):
        with pytest.raises(ValueError):
            FabricSpec(n_shards=0)
        with pytest.raises(ValueError):
            FabricSpec(preset="nonsense")
        with pytest.raises(ValueError):
            FabricSpec(seeds=())


class TestFabricEndToEnd:
    def test_multi_worker_run_matches_serial_byte_for_byte(self):
        coordinator = FabricCoordinator(SPEC, ttl=10.0).start()
        workers = _drive(coordinator, n_workers=2)
        assert sum(w.shards_completed for w in workers) == 2
        assert coordinator.result().render() == _serial_result().render()
        assert coordinator.failures == []
        metrics = coordinator.registry.render()
        assert "repro_fabric_leases_granted_total 2" in metrics
        assert "repro_fabric_shards_completed_total 2" in metrics

    def test_lease_fault_sites_are_survivable(self, monkeypatch):
        # One grant and one renewal fail at the coordinator edge; the
        # worker backs off and retries, and the campaign still completes.
        monkeypatch.setenv(FAULTS_ENV, "lease_grant:times=1;lease_renew:times=1")
        coordinator = FabricCoordinator(SPEC, ttl=0.4).start()
        _drive(coordinator, n_workers=1)
        assert fault_fired("lease_grant")
        assert coordinator.result().render() == _serial_result().render()

    def test_stalled_heartbeat_fault_site_fires(self, monkeypatch):
        # Drive the worker's heartbeat loop directly: the worker_heartbeat
        # stall (a wedged-but-alive worker) fires once, then normal beats
        # renew the lease — deterministic, no shard-duration timing games.
        monkeypatch.setenv(FAULTS_ENV, "worker_heartbeat:sleep=0.05,times=1")
        coordinator = FabricCoordinator(SPEC, ttl=5.0).start()
        try:
            worker = FabricWorker(coordinator.endpoint, name="beat")
            reply = worker.client.request({"op": "lease", "worker": "beat"})
            stop = threading.Event()
            thread = threading.Thread(
                target=worker._heartbeat_loop,
                args=(int(reply["shard"]), 0.02, stop),
                daemon=True,
            )
            thread.start()
            deadline = time.monotonic() + 5.0
            while coordinator.queue.renewals < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            stop.set()
            thread.join(timeout=5)
            worker.client.close()
            assert fault_fired("worker_heartbeat")
            assert coordinator.queue.renewals >= 2
        finally:
            coordinator.stop()

    def test_poison_shard_is_quarantined_and_the_rest_completes(
        self, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "fabric_shard:shard=2")
        coordinator = FabricCoordinator(SPEC, ttl=5.0, max_attempts=2).start()
        workers = _drive(coordinator, n_workers=1)
        assert workers[0].shards_failed == 2  # both grants of shard 2
        [poisoned] = coordinator.failures
        assert "shard 2/2 failed after 2 attempt(s): RuntimeError" in (
            poisoned.describe()
        )
        partial = coordinator.result()
        serial_shard1 = run_campaign(
            SPEC.shard(1), seeds=SPEC.seeds, max_candidates=SPEC.max_candidates
        )
        assert partial.render() == serial_shard1.render()
        assert "repro_fabric_shards_poisoned_total 1" in (
            coordinator.registry.render()
        )

    def test_coordinator_crash_resumes_from_the_journal(
        self, tmp_path, monkeypatch
    ):
        journal_path = tmp_path / "fabric.journal"
        # Run 1: shard 2 poisons, shard 1 completes and is journaled; the
        # coordinator then "crashes" (we simply discard it).
        monkeypatch.setenv(FAULTS_ENV, "fabric_shard:shard=2")
        first = FabricCoordinator(
            SPEC, ttl=5.0, max_attempts=1, journal=journal_path
        ).start()
        _drive(first, n_workers=1)
        assert first.queue.done == [1]
        first.close()
        # Run 2: same spec + journal, fault gone.  Shard 1 must be replayed
        # (not re-leased), shard 2 re-run, and the merged report serial.
        monkeypatch.delenv(FAULTS_ENV)
        second = FabricCoordinator(SPEC, ttl=5.0, journal=journal_path)
        assert second.queue.snapshot()[1] == (DONE, None, 0)
        second.start()
        _drive(second, n_workers=1)
        assert second.queue.granted == 1  # only shard 2 was ever leased
        assert second.result().render() == _serial_result().render()
        second.close()

    def test_workers_share_a_cache_server_and_degrade_without_it(
        self, tmp_path
    ):
        server = CacheNetServer(DiskCache(tmp_path / "shared.sqlite")).start()
        try:
            coordinator = FabricCoordinator(
                SPEC, ttl=10.0, cache_endpoint=server.endpoint
            ).start()
            _drive(coordinator, n_workers=1)
            assert coordinator.result().render() == _serial_result().render()
            with CacheNetClient(server.endpoint) as probe:
                warmed = probe.stats()["entries"]
            assert warmed > 0  # the shared store was actually written
        finally:
            server.stop()
        # Same campaign with the server gone: workers degrade to their local
        # cache and the result is unchanged.
        coordinator = FabricCoordinator(
            SPEC, ttl=10.0, cache_endpoint=server.endpoint
        ).start()
        _drive(coordinator, n_workers=1)
        assert coordinator.result().render() == _serial_result().render()

    def test_unknown_op_and_bad_complete_are_rejected(self):
        coordinator = FabricCoordinator(SPEC, ttl=5.0).start()
        try:
            client = ControlClient(coordinator.endpoint)
            with pytest.raises(FabricError, match="unknown op"):
                client.request({"op": "frobnicate", "worker": "w"})
            with pytest.raises(FabricError, match="rows_csv"):
                client.request({"op": "complete", "worker": "w", "shard": 1})
            client.close()
        finally:
            coordinator.stop()

    def test_control_client_gives_up_on_a_dead_coordinator(self):
        client = ControlClient(
            ("127.0.0.1", _free_port()),
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
        with pytest.raises(FabricError, match="unreachable after 2 attempt"):
            client.request({"op": "hello", "worker": "w"})


class TestShardMarkers:
    def test_marker_roundtrip(self):
        rows = _serial_result().rows
        text = rows_to_csv(list(rows), shard=(2, 3))
        assert read_shard_marker(text) == (2, 3)
        assert [str(r) for r in rows_from_csv(text)] == [str(r) for r in rows]

    def test_unmarked_text_reads_as_none(self):
        assert read_shard_marker(rows_to_csv([])) is None

    def test_malformed_marker_rejected(self):
        with pytest.raises(ValueError, match="malformed shard marker"):
            read_shard_marker("# repro-shard: nonsense\n")
        with pytest.raises(ValueError, match="out of range"):
            read_shard_marker("# repro-shard: 3/2\n")


class TestFabricCLI:
    CLI_ARGS = [
        "--families", "montage",
        "--sizes", "10,20",
        "--seeds", "0",
        "--heuristics", "DF-CkptNvr,DF-CkptW",
        "--max-candidates", "5",
    ]

    def _work_in_thread(self, port: int, name: str = "w") -> threading.Thread:
        def run() -> None:
            worker = FabricWorker(("127.0.0.1", port), name=name, poll=0.02)
            try:
                worker.run()
            except FabricError:
                pass  # coordinator gone (test tearing down)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def test_coordinate_writes_report_and_canonical_csv(self, tmp_path, capsys):
        port = _free_port()
        thread = self._work_in_thread(port)
        report = tmp_path / "fabric.txt"
        out_csv = tmp_path / "fabric.csv"
        code = main([
            "fabric", "coordinate", *self.CLI_ARGS,
            "--shards", "2", "--port", str(port), "--ttl", "5",
            "--timeout", "120",
            "--report", str(report), "--output", str(out_csv),
        ])
        thread.join(timeout=10)
        assert code == 0
        assert "listening" in capsys.readouterr().out
        assert report.read_text().rstrip("\n") == _serial_result().render()
        assert read_shard_marker(out_csv.read_text()) is None  # merged: unmarked
        assert len(rows_from_csv(out_csv.read_text())) == 4

    def test_poison_shard_exits_3_with_the_quarantine_contract(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "fabric_shard:shard=2")
        port = _free_port()
        thread = self._work_in_thread(port)
        code = main([
            "fabric", "coordinate", *self.CLI_ARGS,
            "--shards", "2", "--port", str(port), "--ttl", "5",
            "--max-attempts", "2", "--timeout", "120",
        ])
        thread.join(timeout=10)
        assert code == 3
        err = capsys.readouterr().err
        assert "1 shard(s) quarantined after repeated failures" in err
        assert "shard 2/2 failed after 2 attempt(s): RuntimeError" in err

    def test_work_rejects_a_dead_coordinator(self, capsys):
        code = main([
            "fabric", "work", "--coordinator", f"127.0.0.1:{_free_port()}",
        ])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_metrics_output_is_prometheus_text(self, tmp_path):
        port = _free_port()
        thread = self._work_in_thread(port)
        metrics_path = tmp_path / "metrics.txt"
        assert main([
            "fabric", "coordinate", *self.CLI_ARGS,
            "--shards", "2", "--port", str(port), "--ttl", "5",
            "--timeout", "120", "--metrics-output", str(metrics_path),
        ]) == 0
        thread.join(timeout=10)
        text = metrics_path.read_text()
        assert "# TYPE repro_fabric_leases_granted_total counter" in text
        assert "repro_fabric_shards_completed_total 2" in text


class TestFabricSubprocess:
    """The kill-resume gate, in miniature: a worker process dies mid-shard."""

    def test_sigkilled_worker_is_finished_by_a_peer(self, tmp_path):
        port = _free_port()
        coordinator = FabricCoordinator(
            SPEC, port=port, ttl=1.5, journal=tmp_path / "fabric.journal"
        ).start()
        env = {
            "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
            "PATH": "/usr/bin:/bin",
            # Die (exit 137, SIGKILL-alike) after the first completed unit —
            # mid-shard, after the heartbeat established the lease.
            "REPRO_FAULTS": "campaign_unit:after=1",
        }
        doomed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fabric", "work",
             "--coordinator", f"127.0.0.1:{port}", "--name", "doomed"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert doomed.returncode == 137
        # The shard the dead worker held expires and a peer finishes it.
        survivor = FabricWorker(coordinator.endpoint, name="survivor", poll=0.05)
        thread = threading.Thread(target=survivor.run, daemon=True)
        thread.start()
        coordinator.serve(timeout=120)
        thread.join(timeout=10)
        assert survivor.shards_completed == 2
        assert coordinator.queue.expirations >= 1
        assert coordinator.result().render() == _serial_result().render()
        coordinator.close()
