"""Tests for the DF / BF / RF linearization strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.heuristics import LINEARIZATION_STRATEGIES, linearize, linearize_all
from repro.workflows import generators, pegasus


class TestValidity:
    @pytest.mark.parametrize("strategy", LINEARIZATION_STRATEGIES)
    @pytest.mark.parametrize(
        "workflow_factory",
        [
            lambda: generators.chain_workflow(8, seed=1),
            lambda: generators.fork_workflow(6, seed=2),
            lambda: generators.join_workflow(6, seed=3),
            lambda: generators.diamond_workflow(seed=4),
            lambda: generators.layered_workflow(4, 4, seed=5),
            lambda: generators.random_dag_workflow(15, seed=6),
            lambda: pegasus.montage(30, seed=7),
            lambda: pegasus.cybershake(25, seed=8),
            lambda: generators.paper_example_workflow(),
        ],
    )
    def test_produces_valid_topological_orders(self, strategy, workflow_factory):
        wf = workflow_factory()
        order = linearize(wf, strategy, rng=0)
        assert wf.is_linearization(order)

    def test_empty_workflow(self):
        from repro import Workflow

        assert linearize(Workflow([], []), "DF") == ()

    def test_unknown_strategy_rejected(self):
        wf = generators.chain_workflow(3, seed=0)
        with pytest.raises(ValueError):
            linearize(wf, "ZF")

    def test_strategy_name_case_insensitive(self):
        wf = generators.chain_workflow(3, seed=0)
        assert linearize(wf, "df") == linearize(wf, "DF")


class TestDepthFirstBehaviour:
    def test_chain_in_order(self):
        wf = generators.chain_workflow(6, seed=0)
        assert linearize(wf, "DF") == (0, 1, 2, 3, 4, 5)

    def test_follows_newly_enabled_branch(self):
        # Two independent chains: a DF order must finish one chain before
        # starting the other (depth-first dives into the opened branch).
        from repro import Task, Workflow

        tasks = [Task(index=i, weight=1.0) for i in range(6)]
        edges = [(0, 1), (1, 2), (3, 4), (4, 5)]
        wf = Workflow(tasks, edges)
        order = linearize(wf, "DF")
        position = {t: i for i, t in enumerate(order)}
        chain_a = [position[0], position[1], position[2]]
        chain_b = [position[3], position[4], position[5]]
        assert max(chain_a) < min(chain_b) or max(chain_b) < min(chain_a)

    def test_prioritises_heavy_subtree_first(self):
        from repro import Task, Workflow

        # Source fans out to a light task (1s subtree) and a heavy task (100s subtree).
        tasks = [
            Task(index=0, weight=1.0),
            Task(index=1, weight=1.0),
            Task(index=2, weight=1.0),
            Task(index=3, weight=1.0),
            Task(index=4, weight=100.0),
        ]
        edges = [(0, 1), (0, 2), (1, 3), (2, 4)]
        wf = Workflow(tasks, edges)
        order = linearize(wf, "DF")
        # Task 2 leads to the heavy task 4, so it must be executed before task 1.
        assert order.index(2) < order.index(1)


class TestBreadthFirstBehaviour:
    def test_processes_levels_in_order(self):
        wf = generators.fork_join_workflow(4, seed=1)
        order = linearize(wf, "BF")
        # Source first, sink last, the branches in between.
        assert order[0] == 0
        assert order[-1] == wf.n_tasks - 1

    def test_differs_from_df_on_parallel_chains(self):
        from repro import Task, Workflow

        tasks = [Task(index=i, weight=1.0) for i in range(6)]
        edges = [(0, 1), (1, 2), (3, 4), (4, 5)]
        wf = Workflow(tasks, edges)
        df = linearize(wf, "DF")
        bf = linearize(wf, "BF")
        assert df != bf  # BF interleaves the two chains, DF does not.


class TestRandomFirst:
    def test_deterministic_given_seed(self):
        wf = generators.layered_workflow(4, 4, seed=9)
        assert linearize(wf, "RF", rng=123) == linearize(wf, "RF", rng=123)

    def test_varies_across_seeds(self):
        wf = generators.layered_workflow(4, 4, seed=9)
        orders = {linearize(wf, "RF", rng=s) for s in range(8)}
        assert len(orders) > 1

    def test_accepts_generator_instance(self):
        wf = generators.chain_workflow(4, seed=0)
        order = linearize(wf, "RF", rng=np.random.default_rng(5))
        assert wf.is_linearization(order)


class TestLinearizeAll:
    def test_returns_every_strategy(self):
        wf = generators.layered_workflow(3, 3, seed=2)
        result = linearize_all(wf, rng=1)
        assert set(result) == set(LINEARIZATION_STRATEGIES)
        for order in result.values():
            assert wf.is_linearization(order)
