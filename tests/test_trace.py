"""Tests for execution traces."""

from __future__ import annotations

import pytest

from repro.simulation import EventKind, ExecutionTrace, TraceEvent


class TestTraceEvent:
    def test_end_time(self):
        event = TraceEvent(kind=EventKind.COMPUTE, time=10.0, duration=5.0, task=2)
        assert event.end_time == 15.0

    def test_instantaneous_event(self):
        event = TraceEvent(kind=EventKind.FAILURE, time=3.0)
        assert event.end_time == 3.0
        assert event.task == -1


class TestExecutionTrace:
    @pytest.fixture
    def trace(self):
        trace = ExecutionTrace()
        trace.record(EventKind.ATTEMPT_START, 0.0, task=0)
        trace.record(EventKind.COMPUTE, 0.0, duration=10.0, task=0)
        trace.record(EventKind.FAILURE, 10.0)
        trace.record(EventKind.DOWNTIME, 10.0, duration=2.0)
        trace.record(EventKind.COMPUTE, 12.0, duration=10.0, task=0)
        trace.record(EventKind.CHECKPOINT, 22.0, duration=1.0, task=0)
        trace.record(EventKind.TASK_COMPLETE, 23.0, task=0)
        trace.record(EventKind.WORKFLOW_COMPLETE, 23.0)
        return trace

    def test_len_and_iter(self, trace):
        assert len(trace) == 8
        assert len(list(trace)) == 8

    def test_of_kind(self, trace):
        assert len(trace.of_kind(EventKind.COMPUTE)) == 2
        assert len(trace.of_kind(EventKind.RECOVERY)) == 0

    def test_n_failures(self, trace):
        assert trace.n_failures == 1

    def test_makespan(self, trace):
        assert trace.makespan == 23.0

    def test_total_duration(self, trace):
        assert trace.total_duration(EventKind.COMPUTE) == 20.0
        assert trace.total_duration(EventKind.DOWNTIME) == 2.0

    def test_wasted_time(self, trace):
        # makespan 23 - useful compute 20 - checkpoint 1 = 2 ... but the first
        # compute attempt was wasted: the accounting counts every COMPUTE event,
        # so wasted time here is makespan - 20 - 1 = 2 (downtime).
        assert trace.wasted_time == pytest.approx(2.0)

    def test_tasks_completed(self, trace):
        assert trace.tasks_completed() == [0]

    def test_validate_monotonic(self, trace):
        assert trace.validate_monotonic()
        bad = ExecutionTrace()
        bad.record(EventKind.COMPUTE, 10.0, duration=1.0)
        bad.record(EventKind.COMPUTE, 5.0, duration=1.0)
        assert not bad.validate_monotonic()

    def test_render(self, trace):
        text = trace.render()
        assert "compute" in text
        assert "failure" in text
        truncated = trace.render(limit=2)
        assert "more events" in truncated

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.makespan == 0.0
        assert trace.n_failures == 0
        assert trace.wasted_time == 0.0
        assert trace.validate_monotonic()
