"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Platform,
    Schedule,
    Task,
    Workflow,
    compute_lost_work,
    evaluate_schedule,
    expected_execution_time,
    expected_time_lost,
)
from repro.heuristics import checkpoint_by_cost, checkpoint_by_weight, checkpoint_periodic, linearize
from repro.theory import chain_expected_makespan, solve_chain
from repro.workflows import generators

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

weights_strategy = st.lists(
    st.floats(min_value=0.5, max_value=200.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=10,
)

rate_strategy = st.floats(min_value=0.0, max_value=0.05, allow_nan=False, allow_infinity=False)
downtime_strategy = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def random_workflow_and_schedule(draw):
    """A random DAG (edges i->j with i<j), a random valid schedule."""
    n = draw(st.integers(min_value=1, max_value=9))
    weights = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=100.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    edge_flags = draw(
        st.lists(st.booleans(), min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)
    )
    edges = []
    flag_index = 0
    for i in range(n):
        for j in range(i + 1, n):
            if edge_flags[flag_index]:
                edges.append((i, j))
            flag_index += 1
    factor = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    tasks = [Task(index=i, weight=w) for i, w in enumerate(weights)]
    workflow = Workflow(tasks, edges).with_checkpoint_costs(mode="proportional", factor=factor)
    checkpoint_flags = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    checkpointed = {i for i, flag in enumerate(checkpoint_flags) if flag}
    # Natural order 0..n-1 is always a valid linearization for i<j edges.
    schedule = Schedule(workflow, range(n), checkpointed)
    return workflow, schedule


# ----------------------------------------------------------------------
# Equation (1) properties
# ----------------------------------------------------------------------


class TestExpectationProperties:
    @given(
        w=st.floats(min_value=0.0, max_value=500.0),
        c=st.floats(min_value=0.0, max_value=50.0),
        r=st.floats(min_value=0.0, max_value=50.0),
        lam=rate_strategy,
        d=downtime_strategy,
    )
    @settings(max_examples=200)
    def test_expected_time_bounds(self, w, c, r, lam, d):
        value = expected_execution_time(w, c, r, lam, d)
        assert value >= w + c - 1e-9
        if lam == 0.0:
            assert value == pytest.approx(w + c)

    @given(
        w=st.floats(min_value=0.1, max_value=500.0),
        c=st.floats(min_value=0.0, max_value=50.0),
        r=st.floats(min_value=0.0, max_value=50.0),
        d=downtime_strategy,
        lam1=st.floats(min_value=1e-6, max_value=0.05),
        lam2=st.floats(min_value=1e-6, max_value=0.05),
    )
    @settings(max_examples=200)
    def test_monotonic_in_rate(self, w, c, r, d, lam1, lam2):
        low, high = sorted((lam1, lam2))
        assert expected_execution_time(w, c, r, low, d) <= expected_execution_time(
            w, c, r, high, d
        ) + 1e-9

    @given(w=st.floats(min_value=0.0, max_value=1e4), lam=rate_strategy)
    @settings(max_examples=200)
    def test_time_lost_is_bounded_by_work(self, w, lam):
        value = expected_time_lost(w, lam)
        assert 0.0 <= value <= w + 1e-9


# ----------------------------------------------------------------------
# Evaluator properties on random DAGs
# ----------------------------------------------------------------------


class TestEvaluatorProperties:
    @given(data=random_workflow_and_schedule(), lam=rate_strategy, d=downtime_strategy)
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_makespan_bounds_and_probability_mass(self, data, lam, d):
        workflow, schedule = data
        platform = Platform.from_platform_rate(lam, downtime=d)
        evaluation = evaluate_schedule(schedule, platform, keep_probabilities=True)
        # Lower bound: the failure-free makespan of the same schedule.
        assert evaluation.expected_makespan >= schedule.failure_free_makespan - 1e-6
        # Per-task expectations are non-negative and sum to the makespan.
        assert all(x >= 0.0 for x in evaluation.expected_task_times)
        assert sum(evaluation.expected_task_times) == pytest.approx(
            evaluation.expected_makespan, rel=1e-9, abs=1e-9
        )
        # The Z events partition the space.
        assert evaluation.event_probabilities is not None
        for row in evaluation.event_probabilities:
            assert sum(row) == pytest.approx(1.0, abs=1e-6)
            assert all(-1e-12 <= p <= 1.0 + 1e-12 for p in row)

    @given(data=random_workflow_and_schedule())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_failure_free_equals_schedule_length(self, data):
        workflow, schedule = data
        evaluation = evaluate_schedule(schedule, Platform.failure_free())
        assert evaluation.expected_makespan == pytest.approx(schedule.failure_free_makespan)

    @given(data=random_workflow_and_schedule(), lam=st.floats(min_value=1e-5, max_value=0.02))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_lost_work_subset_property(self, data, lam):
        """W/R for event Z^i_k never exceeds the full loss W/R of Z^i_i."""
        workflow, schedule = data
        lw = compute_lost_work(schedule)
        n = schedule.n_tasks
        for i in range(1, n + 1):
            full = lw.w(i, i) + lw.r(i, i)
            for k in range(0, i + 1):
                assert lw.w(k, i) + lw.r(k, i) <= full + 1e-9


# ----------------------------------------------------------------------
# Heuristic building blocks
# ----------------------------------------------------------------------


class TestLinearizationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_layers=st.integers(min_value=1, max_value=5),
        width=st.integers(min_value=1, max_value=5),
        strategy=st.sampled_from(["DF", "BF", "RF"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_linearizations_are_topological_orders(self, seed, n_layers, width, strategy):
        wf = generators.layered_workflow(n_layers, width, seed=seed)
        order = linearize(wf, strategy, rng=seed)
        assert wf.is_linearization(order)


class TestCheckpointSelectorProperties:
    @given(
        weights=weights_strategy,
        count=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=100)
    def test_selectors_return_valid_subsets_of_requested_size(self, weights, count):
        n = len(weights)
        wf = generators.chain_workflow(n, weights=weights).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        order = tuple(range(n))
        for selector in (checkpoint_by_weight, checkpoint_by_cost):
            selected = selector(wf, order, count)
            assert selected <= frozenset(range(n))
            assert len(selected) == min(count, n)
        periodic = checkpoint_periodic(wf, order, count)
        assert periodic <= frozenset(range(n))
        assert len(periodic) <= max(0, count - 1)


# ----------------------------------------------------------------------
# Chain dynamic program optimality
# ----------------------------------------------------------------------


class TestChainDpProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=1.0, max_value=150.0, allow_nan=False), min_size=2, max_size=8
        ),
        lam=st.floats(min_value=1e-5, max_value=0.02),
        factor=st.floats(min_value=0.01, max_value=0.3),
        subset_mask=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=80, deadline=None)
    def test_dp_never_worse_than_any_sampled_checkpoint_set(self, weights, lam, factor, subset_mask):
        n = len(weights)
        wf = generators.chain_workflow(n, weights=weights).with_checkpoint_costs(
            mode="proportional", factor=factor
        )
        platform = Platform.from_platform_rate(lam)
        solution = solve_chain(wf, platform)
        subset = {i for i in range(n) if subset_mask & (1 << i)}
        candidate = chain_expected_makespan(wf, platform, subset)
        assert solution.expected_makespan <= candidate + 1e-6 * max(1.0, candidate)
