"""Incremental sweep engine versus per-candidate re-evaluation.

The checkpoint-set searches (the paper's exhaustive ``N = 1..n-1``
checkpoint-count search and the local-search refinement) evaluate long
sequences of near-identical candidates.  ``repro.core.sweep.SweepState``
prices each candidate incrementally — only the Algorithm-1 rows and the
Theorem-3 suffix behind the toggled positions are recomputed — with results
bit-for-bit identical to per-candidate evaluation.

This benchmark times both sweep shapes end to end on the CyberShake family
(the evaluator's stress family, as in ``bench_evaluator_scaling.py``):

* ``count_search`` — the exhaustive CkptW checkpoint-count sweep
  (``N = 0..n``, nested candidate sets, pure add-one toggles);
* ``local_search_round`` — one full round of local-search probes (every
  single-checkpoint toggle of a base schedule, in the refinement driver's
  descending-position order), which is the unit of work
  ``local_search_checkpoints`` repeats until convergence.

The eager baseline reproduces the pre-sweep ``batch_evaluate`` loop (shared
position tables, full Algorithm-1 fill and full Theorem-3 kernel per
candidate).  Timings are phase-split (Algorithm-1 loss fill vs Theorem-3
kernel vs bookkeeping overhead) through ``SweepState(profile=True)``.

* ``pytest benchmarks/bench_sweep_incremental.py`` runs n ∈ {100, 250, 500}
  and writes ``benchmark_results/sweep_incremental.json`` (override with
  ``REPRO_BENCH_JSON``), asserting the ≥3x target at n = 500;
* ``python benchmarks/bench_sweep_incremental.py --sizes 250 --output o.json``
  runs standalone (the CI smoke step), checking result agreement along the
  way.  ``benchmarks/check_regression.py`` gates CI on the ``speedup``
  leaves: a >25% slowdown of the incremental path fails.
"""

from __future__ import annotations

import argparse
import json
import math
import os
from pathlib import Path

from repro import Platform
from repro.core.evaluator_native import native_available
from repro.core.evaluator_np import _candidate_lists, _theorem3_kernel
from repro.core.lost_work import _position_tables
from repro.core.sweep import SweepState
from repro.heuristics import checkpoint_by_weight, linearize
from repro.workflows import pegasus

from _bench_utils import add_output_argument, report_scaffold, write_json_report

PLATFORM = Platform.from_platform_rate(1e-3)
COMPARISON_SIZES = (100, 250, 500)
#: End-to-end speedup floor the tentpole promises at n = 500.
TARGET_SPEEDUP = 3.0


def _instance(n_tasks: int):
    workflow = pegasus.cybershake(n_tasks, seed=1).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    order = linearize(workflow, "DF")
    return workflow, order


def _count_search_sets(workflow, order) -> list[frozenset[int]]:
    """The distinct nested CkptW sets of the exhaustive count search."""
    sets: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()
    for count in range(0, workflow.n_tasks + 1):
        selected = (
            frozenset()
            if count == 0
            else checkpoint_by_weight(workflow, order, count)
        )
        if selected not in seen:
            seen.add(selected)
            sets.append(selected)
    return sets


def _local_search_round_sets(workflow, order) -> list[frozenset[int]]:
    """Every single toggle of a base schedule, in the driver's probe order."""
    base = frozenset(order[::3])
    position = {task: pos for pos, task in enumerate(order)}
    tasks = sorted(range(workflow.n_tasks), key=lambda t: -position[t])
    return [base ^ frozenset({task}) for task in tasks]


def eager_batch_makespans(workflow, order, sets, platform) -> list[float]:
    """The pre-sweep ``batch_evaluate`` loop: full recompute per candidate.

    Shared position / predecessor / candidate tables, then one full
    Algorithm-1 traversal fill and one full Theorem-3 kernel per candidate —
    a faithful reproduction of the loop ``SweepState`` replaced (the
    original interpreted traversal included).
    """
    import numpy as np

    n = len(order)
    lam = platform.failure_rate
    position, weight, recovery_cost, predecessors = _position_tables(workflow, order)
    predecessors = [tuple(sorted(p)) for p in predecessors]
    candidates = _candidate_lists(n, predecessors)
    tasks = workflow.tasks
    weights = np.asarray(weight[1:], dtype=np.float64)
    raw_costs = np.fromiter(
        (tasks[t].checkpoint_cost for t in order), dtype=np.float64, count=n
    )
    makespans: list[float] = []
    loss = np.zeros((n + 1, n + 1))
    stack: list[int] = []
    for selected in sets:
        checkpointed = [False] * (n + 1)
        mask = np.zeros(n, dtype=bool)
        for task_index in selected:
            pos = position[task_index]
            checkpointed[pos] = True
            mask[pos - 1] = True
        ckpt_costs = np.where(mask, raw_costs, 0.0)
        loss.fill(0.0)
        for k in range(1, n + 1):
            regenerated = bytearray(n + 1)
            for i in candidates[k]:
                lost = 0.0
                for j in predecessors[i]:
                    if j >= k:
                        break
                    if not regenerated[j]:
                        regenerated[j] = 1
                        stack.append(j)
                while stack:
                    j = stack.pop()
                    if checkpointed[j]:
                        lost += recovery_cost[j]
                    else:
                        lost += weight[j]
                        for p in predecessors[j]:
                            if not regenerated[p]:
                                regenerated[p] = 1
                                stack.append(p)
                if lost:
                    loss[k, i] = lost
        expected_times, _ = _theorem3_kernel(
            np, weights, ckpt_costs, loss, lam, platform.downtime, False
        )
        makespans.append(math.fsum(expected_times))
    return makespans


def _time_sweep(workflow, order, sets, platform, *, backend="numpy"):
    """Time the incremental sweep end to end (state construction included)."""
    import time

    start = time.perf_counter()
    state = SweepState(workflow, order, platform, backend=backend, profile=True)
    makespans = [
        state.evaluate(selected, keep_task_times=False).expected_makespan
        for selected in sets
    ]
    elapsed = time.perf_counter() - start
    return elapsed, makespans, state.stats


def _time_eager(workflow, order, sets, platform):
    import time

    start = time.perf_counter()
    makespans = eager_batch_makespans(workflow, order, sets, platform)
    return time.perf_counter() - start, makespans


def sweep_comparison(sizes=COMPARISON_SIZES, *, check_agreement: bool = True) -> dict:
    """Time both sweep shapes per size; return the JSON report."""
    report = report_scaffold(
        "sweep_incremental",
        family="cybershake",
        platform_rate=PLATFORM.failure_rate,
        sizes=list(sizes),
    )
    report["sweeps"] = {"count_search": {}, "local_search_round": {}}
    for n_tasks in sizes:
        workflow, order = _instance(n_tasks)
        shapes = {
            "count_search": _count_search_sets(workflow, order),
            "local_search_round": _local_search_round_sets(workflow, order),
        }
        for name, sets in shapes.items():
            eager_seconds, eager_values = _time_eager(
                workflow, order, sets, PLATFORM
            )
            incr_seconds, incr_values, stats = _time_sweep(
                workflow, order, sets, PLATFORM
            )
            if check_agreement:
                for got, ref in zip(incr_values, eager_values):
                    assert abs(got - ref) <= 1e-9 * max(1.0, abs(ref)), (
                        name,
                        n_tasks,
                    )
            overhead = max(
                0.0, incr_seconds - stats.fill_seconds - stats.kernel_seconds
            )
            entry = {
                "candidates": len(sets),
                "eager_seconds": eager_seconds,
                "incremental_seconds": incr_seconds,
                "speedup": eager_seconds / incr_seconds,
                "phases": {
                    "loss_fill_seconds": stats.fill_seconds,
                    "kernel_seconds": stats.kernel_seconds,
                    "overhead_seconds": overhead,
                },
                "rows_refilled": stats.rows_refilled,
                "rows_restored": stats.rows_restored,
                "rows_skipped": stats.rows_skipped,
                "kernel_positions": stats.kernel_positions,
            }
            if native_available():
                native_seconds, native_values, _ = _time_sweep(
                    workflow, order, sets, PLATFORM, backend="native"
                )
                if check_agreement:
                    for got, ref in zip(native_values, eager_values):
                        assert abs(got - ref) <= 1e-9 * max(1.0, abs(ref)), (
                            name,
                            n_tasks,
                        )
                # Informational columns, deliberately not named "speedup":
                # the native regression gate lives in evaluator_native.json.
                entry["native_seconds"] = native_seconds
                entry["native_vs_numpy"] = incr_seconds / native_seconds
            report["sweeps"][name][str(n_tasks)] = entry
    return report


def _json_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_JSON", "benchmark_results/sweep_incremental.json")
    )


def _print_report(report: dict) -> None:
    for name, series in report["sweeps"].items():
        for size, entry in series.items():
            phases = entry["phases"]
            native = (
                f"  native {entry['native_seconds']:6.2f}s "
                f"({entry['native_vs_numpy']:.2f}x over numpy)"
                if "native_seconds" in entry
                else ""
            )
            print(
                f"{name:<18} n={size:<4} eager {entry['eager_seconds']:6.2f}s  "
                f"incremental {entry['incremental_seconds']:6.2f}s  "
                f"({entry['speedup']:.2f}x; fill {phases['loss_fill_seconds']:.2f}s "
                f"kernel {phases['kernel_seconds']:.2f}s "
                f"overhead {phases['overhead_seconds']:.2f}s){native}"
            )


def test_sweep_comparison_json():
    """Both sweep shapes hit the >=3x end-to-end target at n = 500."""
    report = sweep_comparison()
    path = write_json_report(report, _json_path())
    print(f"\nwrote {path}")
    _print_report(report)
    assert report["sweeps"]["count_search"]["500"]["speedup"] >= TARGET_SPEEDUP
    assert report["sweeps"]["local_search_round"]["500"]["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the incremental sweep engine against per-candidate "
        "re-evaluation."
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=list(COMPARISON_SIZES))
    add_output_argument(parser)
    args = parser.parse_args(argv)
    report = sweep_comparison(tuple(args.sizes))
    _print_report(report)
    if args.output:
        path = write_json_report(report, Path(args.output))
        print(f"wrote {path}")
    else:
        print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
