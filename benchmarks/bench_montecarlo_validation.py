"""Ablation A1 — Monte-Carlo engines: validation and scaling.

Two questions, one benchmark:

* **Validation** — for one representative instance per workflow family, the
  Theorem-3 expectation must agree with the empirical mean of simulated
  executions (both engines, within the confidence interval).
* **Scaling** — the batched NumPy engine must beat the interpreted
  reference loop by >= 10x at n_runs = 10 000 on a 50-task Montage
  scenario, with **bit-for-bit identical** makespan samples for a shared
  seed.  This is the committed acceptance bar of the vectorized backend
  (``benchmark_results/montecarlo_backends.json``), which
  ``benchmarks/check_regression.py`` re-checks in CI.

Standalone usage (the CI smoke step):

    python benchmarks/bench_montecarlo_validation.py --runs 10000 \
        --output /tmp/montecarlo_backends.json
"""

from __future__ import annotations

import argparse
import time

import pytest

from repro import Platform, Schedule, evaluate_schedule, run_monte_carlo
from repro.heuristics import linearize
from repro.workflows import pegasus

from _bench_utils import add_output_argument, emit_report, report_scaffold

CASES = {
    "montage": (1e-3, 40),
    "cybershake": (1e-3, 40),
    "ligo": (1e-3, 40),
    "genome": (1e-4, 40),
}


def _family_schedule(family: str, n_tasks: int, *, seed: int = 5):
    workflow = pegasus.generate(family, n_tasks, seed=seed).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    order = linearize(workflow, "DF")
    return Schedule(workflow, order, set(order[::3]))


@pytest.mark.parametrize("family", sorted(CASES))
def test_montecarlo_agrees_with_evaluator(benchmark, family, preset):
    rate, n_tasks = CASES[family]
    schedule = _family_schedule(family, n_tasks)
    platform = Platform.from_platform_rate(rate)
    analytical = evaluate_schedule(schedule, platform).expected_makespan

    n_runs = 10_000 if preset == "paper" else 2_000
    summary = benchmark.pedantic(
        lambda: run_monte_carlo(schedule, platform, n_runs=n_runs, rng=9, backend="numpy"),
        iterations=1,
        rounds=1,
    )
    low, high = summary.ci95
    print(
        f"\n{family}: analytical {analytical:.1f}s | MC mean {summary.mean_makespan:.1f}s "
        f"(95% CI [{low:.1f}, {high:.1f}], {summary.mean_failures:.2f} failures/run)"
    )
    margin = 2.0 * (high - low) / 2.0 + 1e-9
    assert abs(summary.mean_makespan - analytical) <= margin


# ----------------------------------------------------------------------
# Engine comparison (python vs numpy) with a JSON artefact
# ----------------------------------------------------------------------
def engine_comparison(
    *,
    families=("montage",),
    n_tasks: int = 50,
    n_runs: int = 10_000,
    seed: int = 9,
    repeats: int = 1,
    check_identical: bool = True,
) -> dict:
    """Time both Monte-Carlo engines per family; return the report.

    The report's per-family entries follow the shared benchmark JSON
    convention (``*_seconds`` timings plus a ``speedup``), and record
    whether the two engines produced bit-for-bit identical samples.
    """
    report = report_scaffold(
        "montecarlo_backends", n_tasks=n_tasks, n_runs=n_runs, seed=seed
    )
    report["families"] = {}
    for family in families:
        rate, _ = CASES.get(family, (1e-3, None))
        schedule = _family_schedule(family, n_tasks)
        platform = Platform.from_platform_rate(rate)
        analytical = evaluate_schedule(schedule, platform).expected_makespan

        timings: dict[str, float] = {}
        summaries = {}
        for backend in ("python", "numpy"):
            best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                summaries[backend] = run_monte_carlo(
                    schedule,
                    platform,
                    n_runs=n_runs,
                    rng=seed,
                    backend=backend,
                    keep_samples=check_identical,
                )
                best = min(best, time.perf_counter() - start)
            timings[backend] = best
        identical = (
            summaries["python"].samples == summaries["numpy"].samples
            if check_identical
            else None
        )
        if check_identical and not identical:
            raise AssertionError(
                f"{family}: python and numpy Monte-Carlo samples diverged"
            )
        summary = summaries["numpy"]
        low, high = summary.ci95
        report["families"][family] = {
            "python_seconds": timings["python"],
            "numpy_seconds": timings["numpy"],
            "speedup": timings["python"] / timings["numpy"],
            "identical_samples": identical,
            "analytical_makespan": analytical,
            "mc_mean_makespan": summary.mean_makespan,
            "ci95": [low, high],
            "mean_failures": summary.mean_failures,
        }
    return report


def test_engine_scaling_json(preset):
    """Both engines bitwise-agree; numpy >= 10x at the acceptance scale.

    The smoke preset keeps CI fast with 2 000 replicas (the asserted floor
    stays 10x — the gap grows with the replica count); the committed
    ``benchmark_results/montecarlo_backends.json`` is produced at the paper
    preset's full 10 000 replicas.
    """
    n_runs = 10_000 if preset == "paper" else 2_000
    report = engine_comparison(n_runs=n_runs)
    entry = report["families"]["montage"]
    print(
        f"\nmontage n=50, {n_runs} runs: python {entry['python_seconds']:.2f}s  "
        f"numpy {entry['numpy_seconds']:.3f}s  ({entry['speedup']:.1f}x)"
    )
    assert entry["identical_samples"] is True
    assert entry["speedup"] >= 10.0
    if preset == "paper":
        from _bench_utils import write_json_report

        path = write_json_report(report, "benchmark_results/montecarlo_backends.json")
        print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the python and numpy Monte-Carlo engines."
    )
    parser.add_argument("--families", default="montage",
                        help="comma-separated workflow families")
    parser.add_argument("--tasks", type=int, default=50)
    parser.add_argument("--runs", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--repeats", type=int, default=1)
    add_output_argument(parser)
    args = parser.parse_args(argv)
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    report = engine_comparison(
        families=families,
        n_tasks=args.tasks,
        n_runs=args.runs,
        seed=args.seed,
        repeats=args.repeats,
    )
    emit_report(report, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
