"""Ablation A1 — analytical evaluator versus Monte-Carlo simulation.

For one representative instance per workflow family, compare the Theorem-3
expectation with the empirical mean of simulated executions.  The benchmark
times the Monte-Carlo side (the analytical evaluation is orders of magnitude
cheaper, which is the whole point of the paper) and asserts agreement within
the confidence interval.
"""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, evaluate_schedule, run_monte_carlo
from repro.heuristics import linearize
from repro.workflows import pegasus

CASES = {
    "montage": (1e-3, 40),
    "cybershake": (1e-3, 40),
    "ligo": (1e-3, 40),
    "genome": (1e-4, 40),
}


@pytest.mark.parametrize("family", sorted(CASES))
def test_montecarlo_agrees_with_evaluator(benchmark, family, preset):
    rate, n_tasks = CASES[family]
    workflow = pegasus.generate(family, n_tasks, seed=5).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_platform_rate(rate)
    order = linearize(workflow, "DF")
    schedule = Schedule(workflow, order, set(order[::3]))
    analytical = evaluate_schedule(schedule, platform).expected_makespan

    n_runs = 2000 if preset == "paper" else 400
    summary = benchmark.pedantic(
        lambda: run_monte_carlo(schedule, platform, n_runs=n_runs, rng=9),
        iterations=1,
        rounds=1,
    )
    low, high = summary.ci95
    print(
        f"\n{family}: analytical {analytical:.1f}s | MC mean {summary.mean_makespan:.1f}s "
        f"(95% CI [{low:.1f}, {high:.1f}], {summary.mean_failures:.2f} failures/run)"
    )
    margin = 2.0 * (high - low) / 2.0 + 1e-9
    assert abs(summary.mean_makespan - analytical) <= margin
