"""Closed-loop load benchmark of the `repro serve` daemon.

Measures what the service subsystem buys over the one-request-at-a-time
baseline on a duplicate-heavy request stream — the workload the daemon is
for (many clients exploring the same families): C client threads each issue
R solve requests drawn round-robin from U unique (family, heuristic) units
over keep-alive HTTP connections against an in-process
:class:`~repro.service.app.BackgroundServer`.

The reference is the same request stream solved serially through direct
:func:`repro.solve_heuristic` calls — no cache, no coalescing, no shared
sweeps — i.e. the cost of scripting the stream against the plain library.
``speedup = direct_serial_seconds / service_seconds``: the service wins by
answering repeats from the content-addressed cache, joining identical
in-flight requests, and sharing one sweep pass across same-linearization
searches (observable in the reported ``sweep_passes``, which stays far
below the request count).

* ``pytest benchmarks/bench_service_load.py`` runs the smoke load and
  writes ``benchmark_results/service_load.json`` (override with
  ``REPRO_BENCH_JSON``), asserting the committed speedup target;
* ``python benchmarks/bench_service_load.py --clients 8 --requests 24
  --output o.json`` runs standalone (the CI smoke step).
  ``benchmarks/check_regression.py`` gates CI on the ``speedup`` leaf.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import Platform, solve_heuristic
from repro.heuristics.registry import heuristic_rng
from repro.heuristics.search import candidate_counts
from repro.service import BackgroundServer, ServiceConfig
from repro.workflows import pegasus

from _bench_utils import add_output_argument, report_scaffold, write_json_report

#: The unique solve units of the stream: one family instance, six heuristics
#: over two linearizations (so perfect coalescing needs two sweep passes).
FAMILY = "montage"
N_TASKS = 30
SEED = 3
HEURISTICS = (
    "DF-CkptW", "DF-CkptC", "DF-CkptD", "DF-CkptPer", "BF-CkptW", "BF-CkptC",
)
DEFAULT_CLIENTS = 4
DEFAULT_REQUESTS = 12
#: Committed speedup floor of the duplicate-heavy smoke load (conservative:
#: the structural win — 48 requests, 6 computations — is far larger).
TARGET_SPEEDUP = 1.5

PLATFORM = Platform.from_platform_rate(1e-3)


def _stream(clients: int, requests: int) -> list[list[dict]]:
    """Per-client request bodies, round-robin over the unique units."""
    return [
        [
            {
                "family": FAMILY,
                "n_tasks": N_TASKS,
                "seed": SEED,
                "heuristic": HEURISTICS[(client * requests + i) % len(HEURISTICS)],
            }
            for i in range(requests)
        ]
        for client in range(clients)
    ]


def _run_client(port: int, bodies: list[dict]) -> list[float]:
    """One closed-loop client: keep-alive connection, blocking round trips."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    makespans: list[float] = []
    try:
        for body in bodies:
            conn.request(
                "POST",
                "/v1/solve",
                body=json.dumps(body),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            if response.status != 200:
                raise RuntimeError(f"solve failed: {payload}")
            makespans.append(payload["expected_makespan"])
    finally:
        conn.close()
    return makespans


def _direct_serial(stream: list[list[dict]]) -> tuple[float, dict[str, float]]:
    """The reference: every request of the stream solved directly, serially."""
    workflow = pegasus.montage(N_TASKS, seed=SEED).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    counts = candidate_counts(workflow.n_tasks, mode="exhaustive")
    reference: dict[str, float] = {}
    start = time.perf_counter()
    for bodies in stream:
        for body in bodies:
            result = solve_heuristic(
                workflow,
                PLATFORM,
                body["heuristic"],
                rng=heuristic_rng(SEED, body["heuristic"]),
                counts=counts,
            )
            reference[body["heuristic"]] = result.expected_makespan
    return time.perf_counter() - start, reference


def service_load(clients: int = DEFAULT_CLIENTS, requests: int = DEFAULT_REQUESTS) -> dict:
    """Run the load against a fresh in-process daemon; return the report."""
    stream = _stream(clients, requests)
    total = clients * requests
    direct_seconds, reference = _direct_serial(stream)

    config = ServiceConfig(port=0, workers=2, batch_window=0.01)
    with BackgroundServer(config) as server:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            observed = list(
                pool.map(lambda bodies: _run_client(server.port, bodies), stream)
            )
        service_seconds = time.perf_counter() - start
        registry = server.server.registry
        counters = {
            name: registry.get(f"repro_solve_{name}_total").value()
            for name in (
                "requests", "cache_hits", "computed", "coalesced", "sweep_passes",
            )
        }
        latency = registry.get("repro_solve_latency_seconds")
        p50 = latency.quantile(0.5)
        p99 = latency.quantile(0.99)

    # Bit-identity of every response with the direct reference solve.
    for bodies, makespans in zip(stream, observed):
        for body, makespan in zip(bodies, makespans):
            assert makespan == reference[body["heuristic"]], body["heuristic"]
    assert counters["requests"] == total
    assert counters["sweep_passes"] < total, "coalescing never engaged"

    report = report_scaffold(
        "service_load",
        family=FAMILY,
        n_tasks=N_TASKS,
        seed=SEED,
        clients=clients,
        requests_per_client=requests,
        unique_units=len(HEURISTICS),
        heuristics=list(HEURISTICS),
    )
    report["load"] = {
        "total_requests": total,
        "direct_serial_seconds": direct_seconds,
        "service_seconds": service_seconds,
        "speedup": direct_seconds / service_seconds,
        "requests_per_second": total / service_seconds,
        "sweep_passes": int(counters["sweep_passes"]),
        "computed": int(counters["computed"]),
        "cache_hits": int(counters["cache_hits"]),
        "coalesced": int(counters["coalesced"]),
        "solve_latency_p50_seconds": p50,
        "solve_latency_p99_seconds": p99,
    }
    return report


def _print_report(report: dict) -> None:
    load = report["load"]
    print(
        f"{load['total_requests']} requests "
        f"({report['params']['clients']} clients): "
        f"direct {load['direct_serial_seconds']:.2f}s  "
        f"service {load['service_seconds']:.2f}s  "
        f"({load['speedup']:.2f}x, {load['requests_per_second']:.0f} req/s)\n"
        f"sweep passes {load['sweep_passes']}  computed {load['computed']}  "
        f"cache hits {load['cache_hits']}  coalesced {load['coalesced']}  "
        f"p50 {load['solve_latency_p50_seconds'] * 1000:.1f}ms  "
        f"p99 {load['solve_latency_p99_seconds'] * 1000:.1f}ms"
    )


def _json_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_JSON", "benchmark_results/service_load.json")
    )


def test_service_load_json():
    """The duplicate-heavy stream beats serial direct solving by the target."""
    report = service_load()
    path = write_json_report(report, _json_path())
    print(f"\nwrote {path}")
    _print_report(report)
    assert report["load"]["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Closed-loop load benchmark of the repro serve daemon."
    )
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help="requests per client")
    add_output_argument(parser)
    args = parser.parse_args(argv)
    report = service_load(args.clients, args.requests)
    _print_report(report)
    if args.output:
        path = write_json_report(report, Path(args.output))
        print(f"wrote {path}")
    else:
        print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
