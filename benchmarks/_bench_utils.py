"""Helpers shared by the benchmark modules (printing and aggregation)."""

from __future__ import annotations

from typing import Iterable


def print_series(title: str, result, *, x_label: str = "n") -> None:
    """Render a FigureResult's series as the textual analogue of the figure."""
    print(f"\n--- {title} ---")
    for family in result.panels:
        series = result.series(family)
        if not series:
            # Figure 4 tags its panels through the scenario label instead of the
            # family; fall back to filtering rows by label.
            rows = [r for r in result.rows if r.label == family]
            if not rows:
                continue
            from repro.experiments.harness import series_by_heuristic

            series = series_by_heuristic(rows, x_axis=result.x_axis)
        print(f"[{family}]")
        for heuristic in sorted(series):
            points = series[heuristic]
            rendered = "  ".join(f"{x_label}={x:g}:{y:.3f}" for x, y in points)
            print(f"  {heuristic:<12} {rendered}")


def mean_ratio(series: dict[str, list[tuple[float, float]]], heuristic: str) -> float:
    """Average T/T_inf of one heuristic across the x axis."""
    points = series.get(heuristic, [])
    if not points:
        return float("nan")
    return sum(y for _, y in points) / len(points)


def best_strategy_per_point(
    series: dict[str, list[tuple[float, float]]], heuristics: Iterable[str]
) -> dict[float, str]:
    """For each x value, which of the given heuristics achieves the lowest ratio."""
    winners: dict[float, tuple[str, float]] = {}
    for heuristic in heuristics:
        for x, y in series.get(heuristic, []):
            if x not in winners or y < winners[x][1]:
                winners[x] = (heuristic, y)
    return {x: name for x, (name, _) in sorted(winners.items())}
