"""Helpers shared by the benchmark modules (printing, aggregation, JSON).

Every ``bench_*.py`` that can run standalone follows one output convention:

* ``--output PATH`` (or the ``REPRO_BENCH_JSON`` environment variable for
  the pytest-driven path) writes a machine-readable JSON report through
  :func:`write_json_report`;
* the report is a plain dict whose timing leaves are named ``*_seconds``
  and whose backend-comparison leaves carry a ``speedup`` entry — the shape
  ``benchmarks/check_regression.py`` consumes to gate CI on numpy-path
  regressions.

Use :func:`report_scaffold` for the envelope so every report self-describes
(benchmark name + parameters), and :func:`add_output_argument` for the
shared CLI flag.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Iterable


def report_scaffold(name: str, **params: Any) -> dict:
    """Standard envelope of a benchmark JSON report."""
    return {"benchmark": name, "params": dict(params)}


def write_json_report(report: dict, path: str | Path) -> Path:
    """Write a benchmark report as indented JSON, creating parent dirs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def add_output_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--output`` flag of every standalone benchmark CLI."""
    parser.add_argument(
        "--output", "-o", default=None,
        help="write the machine-readable JSON report to this path",
    )


def emit_report(report: dict, output: str | Path | None) -> None:
    """Print the report; also write it when an output path was requested."""
    print(json.dumps(report, indent=2))
    if output:
        path = write_json_report(report, output)
        print(f"wrote {path}")


# ----------------------------------------------------------------------
# JSON capture for the pytest-driven benchmarks
# ----------------------------------------------------------------------
# The figure benchmarks run under pytest (they need the `benchmark`
# fixture), so they cannot take ``--output``.  Setting the environment
# variable ``REPRO_BENCH_JSON_DIR`` makes them write the same JSON shape
# instead: one ``<figure>.json`` per series sweep plus one
# ``bench_metrics.json`` with the scalar metrics recorded by the other
# benchmarks (flushed by the conftest at session end).

_METRICS: dict[str, dict] = {}


def json_output_dir() -> Path | None:
    """Directory requested via ``REPRO_BENCH_JSON_DIR``, or ``None``."""
    import os

    value = os.environ.get("REPRO_BENCH_JSON_DIR", "").strip()
    return Path(value) if value else None


def maybe_write_series_json(name: str, result) -> None:
    """Write a FigureResult's series as ``<name>.json`` (when capture is on)."""
    directory = json_output_dir()
    if directory is None:
        return
    report = report_scaffold(name, x_axis=result.x_axis)
    report["description"] = result.description
    report["series"] = {
        family: {
            heuristic: [[x, y] for x, y in points]
            for heuristic, points in result.series(family).items()
        }
        for family in result.panels
    }
    write_json_report(report, directory / f"{name}.json")


def record_metric(benchmark: str, **values: Any) -> None:
    """Record scalar metrics of one benchmark for the session JSON report."""
    _METRICS.setdefault(benchmark, {}).update(values)


def flush_metrics() -> Path | None:
    """Write the recorded metrics (if any, and if capture is on)."""
    directory = json_output_dir()
    if directory is None or not _METRICS:
        return None
    report = report_scaffold("bench_metrics")
    report["metrics"] = {name: dict(values) for name, values in sorted(_METRICS.items())}
    return write_json_report(report, directory / "bench_metrics.json")


def print_series(title: str, result, *, x_label: str = "n") -> None:
    """Render a FigureResult's series as the textual analogue of the figure."""
    print(f"\n--- {title} ---")
    for family in result.panels:
        series = result.series(family)
        if not series:
            # Figure 4 tags its panels through the scenario label instead of the
            # family; fall back to filtering rows by label.
            rows = [r for r in result.rows if r.label == family]
            if not rows:
                continue
            from repro.experiments.harness import series_by_heuristic

            series = series_by_heuristic(rows, x_axis=result.x_axis)
        print(f"[{family}]")
        for heuristic in sorted(series):
            points = series[heuristic]
            rendered = "  ".join(f"{x_label}={x:g}:{y:.3f}" for x, y in points)
            print(f"  {heuristic:<12} {rendered}")


def mean_ratio(series: dict[str, list[tuple[float, float]]], heuristic: str) -> float:
    """Average T/T_inf of one heuristic across the x axis."""
    points = series.get(heuristic, [])
    if not points:
        return float("nan")
    return sum(y for _, y in points) / len(points)


def best_strategy_per_point(
    series: dict[str, list[tuple[float, float]]], heuristics: Iterable[str]
) -> dict[float, str]:
    """For each x value, which of the given heuristics achieves the lowest ratio."""
    winners: dict[float, tuple[str, float]] = {}
    for heuristic in heuristics:
        for x, y in series.get(heuristic, []):
            if x not in winners or y < winners[x][1]:
                winners[x] = (heuristic, y)
    return {x: name for x, (name, _) in sorted(winners.items())}
