"""Ablation A3 — the paper's heuristics versus the optimal chain DP.

On linear chains the Toueg–Babaoğlu dynamic program is optimal; the paper's
general-DAG heuristics should land close to it (they search the same family of
"checkpoint the k heaviest / cheapest tasks" sets), while the periodic
heuristic and the baselines pay a visible price.  This quantifies the gap and
times both approaches.
"""

from __future__ import annotations

import pytest

from repro import Platform, solve_heuristic
from repro.theory import solve_chain
from repro.workflows import generators

from _bench_utils import record_metric

HEURISTICS = ("DF-CkptW", "DF-CkptC", "DF-CkptPer", "DF-CkptNvr", "DF-CkptAlws")


@pytest.fixture(scope="module")
def chain_instance():
    workflow = generators.chain_workflow(60, seed=13, mean_weight=50.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_mtbf(500.0, downtime=5.0)
    return workflow, platform


def test_chain_dp_baseline(benchmark, chain_instance):
    workflow, platform = chain_instance
    solution = benchmark(lambda: solve_chain(workflow, platform))
    print(
        f"\nchain-60 optimal DP: E[makespan]={solution.expected_makespan:.1f}s, "
        f"{len(solution.checkpointed)} checkpoints"
    )


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_heuristics_against_chain_optimum(benchmark, chain_instance, heuristic):
    workflow, platform = chain_instance
    optimum = solve_chain(workflow, platform).expected_makespan
    result = benchmark.pedantic(
        lambda: solve_heuristic(workflow, platform, heuristic),
        iterations=1,
        rounds=1,
    )
    gap = 100.0 * (result.expected_makespan / optimum - 1.0)
    record_metric(
        "chain_baseline",
        **{f"{heuristic}_gap_percent": gap},
    )
    print(
        f"\n{heuristic}: E[makespan]={result.expected_makespan:.1f}s "
        f"(+{gap:.2f}% vs optimal DP, {result.checkpoint_count} checkpoints)"
    )
    # No heuristic can beat the optimum; the searchful ones stay within 10%.
    assert result.expected_makespan >= optimum - 1e-6
    if heuristic in ("DF-CkptW", "DF-CkptC"):
        assert gap <= 10.0
