"""Figure 5 — checkpointing strategies with ``c = 0.01 w``.

Paper reference: Figure 5 (a-d), the four families with a checkpoint cost of
1% of the task weight.  Expected shape: same ranking as Figure 3 (CkptW /
CkptC on top) but with much smaller overheads, since checkpointing is now
almost free — CkptAlws becomes nearly as good as the searchful strategies.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure5

from _bench_utils import maybe_write_series_json, mean_ratio, print_series


@pytest.mark.figure("figure5")
def test_figure5_small_proportional_costs(benchmark, figure_sizes, search_mode):
    result = benchmark.pedantic(
        lambda: figure5(sizes=figure_sizes, seed=0, search_mode=search_mode),
        iterations=1,
        rounds=1,
    )
    print_series("Figure 5: T/T_inf, checkpointing strategies (c = 0.01 w)", result)

    maybe_write_series_json("figure5", result)
    for family in result.panels:
        series = result.series(family)
        best_searchful = min(
            mean_ratio(series, f"{lin}-{strat}")
            for lin in ("DF", "BF", "RF")
            for strat in ("CkptW", "CkptC")
        )
        # Cheap checkpoints: checkpointing everything is close to the best
        # searchful strategy, and never checkpointing is the clear loser for
        # the heavy-task families.
        assert mean_ratio(series, "DF-CkptAlws") <= best_searchful + 0.10
        if family in ("ligo", "genome"):
            assert mean_ratio(series, "DF-CkptNvr") > best_searchful
