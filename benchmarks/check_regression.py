"""CI benchmark-regression gate for the NumPy fast paths.

Compares a freshly produced benchmark JSON against the committed baseline in
``benchmark_results/`` and fails (exit code 1) when a numpy path regressed by
more than the threshold.

What is compared: every numeric ``speedup`` leaf (python-seconds over
numpy-seconds at the same point), matched by its JSON path.  Speedups are
*relative* measurements — the python reference runs on the same machine in
the same session — so the gate is robust to CI runners being faster or
slower than the machine that produced the baseline, which absolute
``*_seconds`` values are not.  A current speedup below
``baseline * (1 - threshold)`` is a regression.

Usage (one or more pairs):

    python benchmarks/check_regression.py \
        --compare /tmp/evaluator_backends.json benchmark_results/evaluator_backends.json \
        --compare /tmp/montecarlo_backends.json benchmark_results/montecarlo_backends.json \
        --threshold 0.25

Points present only in the baseline (e.g. a smoke run covering fewer sizes)
are reported and skipped; ``--strict`` turns them into failures.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default tolerated relative slowdown of a numpy path before CI fails.
DEFAULT_THRESHOLD = 0.25


def speedup_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten a report to ``{json.path: value}`` for every ``speedup`` leaf."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if key == "speedup" and isinstance(value, (int, float)):
                leaves[path] = float(value)
            else:
                leaves.update(speedup_leaves(value, path))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            leaves.update(speedup_leaves(value, f"{prefix}[{index}]"))
    return leaves


def compare_reports(
    current: dict,
    baseline: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing speedup leaves of two reports."""
    current_leaves = speedup_leaves(current)
    baseline_leaves = speedup_leaves(baseline)
    regressions: list[str] = []
    notes: list[str] = []
    for path, baseline_value in sorted(baseline_leaves.items()):
        current_value = current_leaves.get(path)
        if current_value is None:
            notes.append(f"missing in current run: {path} (baseline {baseline_value:.2f}x)")
            continue
        floor = baseline_value * (1.0 - threshold)
        verdict = "ok" if current_value >= floor else "REGRESSION"
        line = (
            f"{path}: baseline {baseline_value:6.2f}x  current {current_value:6.2f}x  "
            f"floor {floor:6.2f}x  {verdict}"
        )
        notes.append(line)
        if current_value < floor:
            regressions.append(line)
    for path in sorted(set(current_leaves) - set(baseline_leaves)):
        notes.append(f"new point (no baseline): {path} ({current_leaves[path]:.2f}x)")
    if not baseline_leaves:
        regressions.append("baseline report contains no speedup leaves")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a numpy-path speedup regressed vs its committed baseline."
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("CURRENT", "BASELINE"),
        action="append",
        required=True,
        help="pair of JSON reports to compare (repeatable)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"tolerated relative slowdown (default {DEFAULT_THRESHOLD:.0%})",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a baseline point is missing from the current run",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must lie in [0, 1)")

    failures: list[str] = []
    for current_path, baseline_path in args.compare:
        current = json.loads(Path(current_path).read_text())
        baseline = json.loads(Path(baseline_path).read_text())
        print(f"== {current_path} vs {baseline_path} (threshold {args.threshold:.0%})")
        regressions, notes = compare_reports(
            current, baseline, threshold=args.threshold
        )
        for note in notes:
            print(f"   {note}")
        failures.extend(regressions)
        if args.strict:
            failures.extend(n for n in notes if n.startswith("missing in current run"))
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nall numpy-path speedups within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
