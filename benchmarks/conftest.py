"""Shared configuration for the benchmark harness.

Every benchmark regenerates the data behind one of the paper's figures (or an
ablation) and prints the resulting series.  Two scales are supported:

* the default ``smoke`` scale keeps every benchmark under a few seconds so that
  ``pytest benchmarks/ --benchmark-only`` is routinely runnable;
* setting the environment variable ``REPRO_BENCH_PRESET=paper`` switches to the
  paper's instance sizes (50-700 tasks, exhaustive checkpoint-count search),
  which takes hours — use it to produce the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; make sure stray unit-test
    # fixtures are not expected here.
    config.addinivalue_line("markers", "figure(name): benchmark reproducing a paper figure")


def pytest_sessionfinish(session, exitstatus):
    # Flush the scalar metrics recorded by the benchmarks into
    # $REPRO_BENCH_JSON_DIR/bench_metrics.json (no-op when capture is off).
    from _bench_utils import flush_metrics

    flush_metrics()


@pytest.fixture(scope="session")
def preset() -> str:
    """Benchmark scale: ``smoke`` (default) or ``paper`` (env override)."""
    value = os.environ.get("REPRO_BENCH_PRESET", "smoke").lower()
    if value not in ("smoke", "paper"):
        raise ValueError(f"REPRO_BENCH_PRESET must be 'smoke' or 'paper', got {value!r}")
    return value


@pytest.fixture(scope="session")
def figure_sizes(preset) -> tuple[int, ...]:
    """Task counts for the figure sweeps."""
    if preset == "paper":
        return (50, 100, 200, 300, 400, 500, 600, 700)
    return (30, 60)


@pytest.fixture(scope="session")
def search_mode(preset) -> str:
    """Checkpoint-count search mode matching the preset."""
    return "exhaustive" if preset == "paper" else "geometric"
