"""Ablation — cost of the Theorem-3 evaluator as the workflow grows.

The paper bounds the evaluation of a schedule by O(n^4); the implementation
here is O(n·|E| + n^2) for sparse DAGs.  This benchmark times a single
evaluation on increasingly large CyberShake instances (the widest family) and
on long chains (the deepest recovery structures), which is the cost that
drives the checkpoint-count search of every heuristic.
"""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, evaluate_schedule
from repro.heuristics import linearize
from repro.workflows import generators, pegasus


def _cybershake_schedule(n_tasks: int):
    workflow = pegasus.cybershake(n_tasks, seed=1).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    order = linearize(workflow, "DF")
    return Schedule(workflow, order, set(order[::3]))


def _chain_schedule(n_tasks: int):
    workflow = generators.chain_workflow(n_tasks, seed=1, mean_weight=20.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    return Schedule(workflow, range(n_tasks), set(range(0, n_tasks, 5)))


PLATFORM = Platform.from_platform_rate(1e-3)


@pytest.mark.parametrize("n_tasks", [50, 100, 200, 400])
def test_evaluator_scaling_cybershake(benchmark, n_tasks, preset):
    if preset == "smoke" and n_tasks > 200:
        pytest.skip("large sizes only at REPRO_BENCH_PRESET=paper")
    schedule = _cybershake_schedule(n_tasks)
    evaluation = benchmark(lambda: evaluate_schedule(schedule, PLATFORM))
    print(
        f"\ncybershake n={schedule.n_tasks}: E[makespan]={evaluation.expected_makespan:.1f}s "
        f"(ratio {evaluation.overhead_ratio:.3f})"
    )


@pytest.mark.parametrize("n_tasks", [50, 100, 200, 400])
def test_evaluator_scaling_chain(benchmark, n_tasks, preset):
    if preset == "smoke" and n_tasks > 200:
        pytest.skip("large sizes only at REPRO_BENCH_PRESET=paper")
    schedule = _chain_schedule(n_tasks)
    evaluation = benchmark(lambda: evaluate_schedule(schedule, PLATFORM))
    print(
        f"\nchain n={n_tasks}: E[makespan]={evaluation.expected_makespan:.1f}s "
        f"(ratio {evaluation.overhead_ratio:.3f})"
    )


def test_lost_work_dominates_cost(benchmark):
    """The lost-work arrays can be reused across platforms: measure the split."""
    from repro import compute_lost_work

    schedule = _cybershake_schedule(150)
    lost_work = compute_lost_work(schedule)

    def evaluate_with_precomputed():
        return evaluate_schedule(schedule, PLATFORM, lost_work=lost_work)

    evaluation = benchmark(evaluate_with_precomputed)
    assert evaluation.expected_makespan > 0
