"""Ablation — cost of the Theorem-3 evaluator as the workflow grows.

The paper bounds the evaluation of a schedule by O(n^4); the implementation
here is O(n·|E| + n^2) for sparse DAGs.  This benchmark times a single
evaluation on increasingly large CyberShake instances (the widest family) and
on long chains (the deepest recovery structures), which is the cost that
drives the checkpoint-count search of every heuristic.

It also compares the two evaluation backends (pure-Python reference vs the
NumPy fast path of ``repro.core.evaluator_np``) and records the result as a
JSON file, so later PRs have a perf trajectory to regress against:

* ``pytest benchmarks/bench_evaluator_scaling.py`` runs the comparison at
  n ∈ {50, 100, 250, 500} and writes ``benchmark_results/evaluator_backends.json``
  (override the path with ``REPRO_BENCH_JSON``);
* ``python benchmarks/bench_evaluator_scaling.py --sizes 50 --output out.json``
  runs the same comparison standalone (used by the CI smoke step), checking
  backend agreement along the way.

Speedups are family-dependent: the Theorem-3 recursion itself vectorizes
~10x (long chains are almost pure recursion), while wide Pegasus DAGs spend
most of their time in the Algorithm-1 graph traversal, which caps them at
~4x end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro import Platform, Schedule, evaluate_schedule
from repro.core.evaluator_native import native_available
from repro.heuristics import linearize
from repro.workflows import generators, pegasus

from _bench_utils import add_output_argument, report_scaffold, write_json_report


def _cybershake_schedule(n_tasks: int):
    workflow = pegasus.cybershake(n_tasks, seed=1).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    order = linearize(workflow, "DF")
    return Schedule(workflow, order, set(order[::3]))


def _chain_schedule(n_tasks: int):
    workflow = generators.chain_workflow(n_tasks, seed=1, mean_weight=20.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    return Schedule(workflow, range(n_tasks), set(range(0, n_tasks, 5)))


PLATFORM = Platform.from_platform_rate(1e-3)


@pytest.mark.parametrize("n_tasks", [50, 100, 200, 400])
def test_evaluator_scaling_cybershake(benchmark, n_tasks, preset):
    if preset == "smoke" and n_tasks > 200:
        pytest.skip("large sizes only at REPRO_BENCH_PRESET=paper")
    schedule = _cybershake_schedule(n_tasks)
    evaluation = benchmark(lambda: evaluate_schedule(schedule, PLATFORM))
    print(
        f"\ncybershake n={schedule.n_tasks}: E[makespan]={evaluation.expected_makespan:.1f}s "
        f"(ratio {evaluation.overhead_ratio:.3f})"
    )


@pytest.mark.parametrize("n_tasks", [50, 100, 200, 400])
def test_evaluator_scaling_chain(benchmark, n_tasks, preset):
    if preset == "smoke" and n_tasks > 200:
        pytest.skip("large sizes only at REPRO_BENCH_PRESET=paper")
    schedule = _chain_schedule(n_tasks)
    evaluation = benchmark(lambda: evaluate_schedule(schedule, PLATFORM))
    print(
        f"\nchain n={n_tasks}: E[makespan]={evaluation.expected_makespan:.1f}s "
        f"(ratio {evaluation.overhead_ratio:.3f})"
    )


@pytest.mark.parametrize("backend", ["python", "numpy", "native"])
@pytest.mark.parametrize("n_tasks", [100, 400])
def test_evaluator_backend_cybershake(benchmark, backend, n_tasks, preset):
    if preset == "smoke" and n_tasks > 200:
        pytest.skip("large sizes only at REPRO_BENCH_PRESET=paper")
    if backend == "native" and not native_available():
        pytest.skip("no C toolchain: native backend unavailable")
    schedule = _cybershake_schedule(n_tasks)
    evaluation = benchmark(lambda: evaluate_schedule(schedule, PLATFORM, backend=backend))
    assert evaluation.expected_makespan > 0


# ----------------------------------------------------------------------
# Backend comparison (python vs numpy) with a JSON artefact
# ----------------------------------------------------------------------
COMPARISON_SIZES = (50, 100, 250, 500)

_FAMILIES = {
    "cybershake": _cybershake_schedule,
    "chain": _chain_schedule,
}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def backend_comparison(
    sizes=COMPARISON_SIZES, *, repeats: int = 3, check_agreement: bool = True
) -> dict:
    """Time one evaluation per (family, size, backend); return the report."""
    report = report_scaffold(
        "evaluator_backends", platform_rate=PLATFORM.failure_rate, sizes=list(sizes)
    )
    report["families"] = {}
    for family, build in _FAMILIES.items():
        series = {}
        for n_tasks in sizes:
            schedule = build(n_tasks)
            results = {
                backend: evaluate_schedule(schedule, PLATFORM, backend=backend)
                for backend in ("python", "numpy")
            }
            if check_agreement:
                py = results["python"].expected_makespan
                np_ = results["numpy"].expected_makespan
                assert abs(py - np_) <= 1e-9 * max(1.0, abs(py)), (family, n_tasks)
            timings = {
                backend: _best_of(
                    lambda b=backend: evaluate_schedule(schedule, PLATFORM, backend=b),
                    repeats,
                )
                for backend in ("python", "numpy")
            }
            series[str(n_tasks)] = {
                "python_seconds": timings["python"],
                "numpy_seconds": timings["numpy"],
                "speedup": timings["python"] / timings["numpy"],
            }
        report["families"][family] = series
    return report


def _json_path() -> Path:
    return Path(
        os.environ.get(
            "REPRO_BENCH_JSON", "benchmark_results/evaluator_backends.json"
        )
    )


def write_backend_comparison(report: dict, path: Path | None = None) -> Path:
    return write_json_report(report, path if path is not None else _json_path())


def test_backend_comparison_json():
    """Both backends agree; the numpy one is faster, >= 5x on chains at n=500."""
    report = backend_comparison()
    path = write_backend_comparison(report)
    print(f"\nwrote {path}")
    for family, series in report["families"].items():
        for size, entry in series.items():
            print(
                f"{family:<11} n={size:<4} python {entry['python_seconds'] * 1e3:7.1f}ms  "
                f"numpy {entry['numpy_seconds'] * 1e3:7.1f}ms  ({entry['speedup']:.1f}x)"
            )
    # The recursion-bound chain instance must hit the >= 5x target at n=500;
    # the traversal-bound cybershake instance must still win clearly.
    assert report["families"]["chain"]["500"]["speedup"] >= 5.0
    assert report["families"]["cybershake"]["500"]["speedup"] >= 2.0


# ----------------------------------------------------------------------
# Native kernel comparison (numpy vs the compiled C backend)
# ----------------------------------------------------------------------
def native_comparison(
    sizes=COMPARISON_SIZES, *, repeats: int = 3, check_agreement: bool = True
) -> dict:
    """Time one evaluation per (family, size) on numpy vs native.

    The ``speedup`` leaves are numpy-seconds over native-seconds — a
    same-run relative measurement like the python/numpy report, so the
    regression gate is robust to slow or fast CI runners.  Requires a C
    toolchain (callers should check :func:`native_available` first).
    """
    report = report_scaffold(
        "evaluator_native", platform_rate=PLATFORM.failure_rate, sizes=list(sizes)
    )
    report["families"] = {}
    for family, build in _FAMILIES.items():
        series = {}
        for n_tasks in sizes:
            schedule = build(n_tasks)
            if check_agreement:
                np_ = evaluate_schedule(schedule, PLATFORM, backend="numpy")
                nat = evaluate_schedule(schedule, PLATFORM, backend="native")
                ref = np_.expected_makespan
                assert abs(nat.expected_makespan - ref) <= 1e-9 * max(1.0, abs(ref)), (
                    family,
                    n_tasks,
                )
            timings = {
                backend: _best_of(
                    lambda b=backend: evaluate_schedule(schedule, PLATFORM, backend=b),
                    repeats,
                )
                for backend in ("numpy", "native")
            }
            series[str(n_tasks)] = {
                "numpy_seconds": timings["numpy"],
                "native_seconds": timings["native"],
                "speedup": timings["numpy"] / timings["native"],
            }
        report["families"][family] = series
    return report


def _native_json_path() -> Path:
    return Path(
        os.environ.get(
            "REPRO_BENCH_NATIVE_JSON", "benchmark_results/evaluator_native.json"
        )
    )


def test_native_comparison_json():
    """The compiled kernel beats numpy >= 5x on cybershake at n=500."""
    if not native_available():
        pytest.skip("no C toolchain: native backend unavailable")
    report = native_comparison(repeats=5)
    path = write_json_report(report, _native_json_path())
    print(f"\nwrote {path}")
    for family, series in report["families"].items():
        for size, entry in series.items():
            print(
                f"{family:<11} n={size:<4} numpy {entry['numpy_seconds'] * 1e3:7.2f}ms  "
                f"native {entry['native_seconds'] * 1e3:7.2f}ms  ({entry['speedup']:.1f}x)"
            )
    # The traversal-bound cybershake instance is where the C loss fill pays
    # off most; the recursion-bound chain must still win clearly.
    assert report["families"]["cybershake"]["500"]["speedup"] >= 5.0
    assert report["families"]["chain"]["500"]["speedup"] >= 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the python, numpy and native evaluation backends."
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=list(COMPARISON_SIZES))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--native",
        action="store_true",
        help="compare numpy vs the compiled native kernel instead of python vs numpy",
    )
    add_output_argument(parser)
    args = parser.parse_args(argv)
    if args.native:
        if not native_available():
            print("error: native backend unavailable (no C toolchain)")
            return 1
        report = native_comparison(tuple(args.sizes), repeats=args.repeats)
        path = write_json_report(
            report, Path(args.output) if args.output else _native_json_path()
        )
    else:
        report = backend_comparison(tuple(args.sizes), repeats=args.repeats)
        path = write_backend_comparison(
            report, Path(args.output) if args.output else None
        )
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")
    return 0


def test_lost_work_dominates_cost(benchmark):
    """The lost-work arrays can be reused across platforms: measure the split."""
    from repro import compute_lost_work

    schedule = _cybershake_schedule(150)
    lost_work = compute_lost_work(schedule)

    def evaluate_with_precomputed():
        return evaluate_schedule(schedule, PLATFORM, lost_work=lost_work)

    evaluation = benchmark(evaluate_with_precomputed)
    assert evaluation.expected_makespan > 0


if __name__ == "__main__":
    raise SystemExit(main())
