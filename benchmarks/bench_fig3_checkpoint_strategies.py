"""Figure 3 — impact of the checkpointing strategy, ``c = 0.1 w``.

Paper reference: Figure 3 (a) Montage, (b) Ligo, (c) CyberShake, (d) Genome;
for every checkpointing strategy the best linearization is plotted.  Expected
shape: CkptW and CkptC dominate; CkptNvr / CkptAlws / CkptPer trail behind
(CkptPer is sometimes even worse than the baselines); ratios sit around
1.1-1.5 for Montage / CyberShake / Ligo and 1.6-2.4 for Genome in the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments import best_by_strategy, figure3

from _bench_utils import maybe_write_series_json, print_series


@pytest.mark.figure("figure3")
def test_figure3_checkpoint_strategy_impact(benchmark, figure_sizes, search_mode):
    result = benchmark.pedantic(
        lambda: figure3(sizes=figure_sizes, seed=0, search_mode=search_mode),
        iterations=1,
        rounds=1,
    )
    print_series("Figure 3: T/T_inf, checkpointing strategies (c = 0.1 w)", result)

    maybe_write_series_json("figure3", result)
    # Textual analogue of the paper's plotting rule: per strategy, keep the best
    # linearization, then compare strategies.
    best = best_by_strategy(result.rows)
    print("\nBest linearization per checkpointing strategy:")
    for (family, n, strategy), row in sorted(best.items()):
        print(f"  {family:<12} n={n:<4} {strategy:<9} -> {row.heuristic:<11} ratio {row.overhead_ratio:.3f}")

    # Shape checks: the searchful strategies never lose to the baselines.
    for family in result.panels:
        rows = [r for r in result.rows if r.family == family]
        for n in {r.n_tasks for r in rows}:
            subset = [r for r in rows if r.n_tasks == n]
            ratio = {strategy: min(r.overhead_ratio for r in subset if r.checkpoint_strategy == strategy)
                     for strategy in ("CkptNvr", "CkptAlws", "CkptW", "CkptC")}
            assert ratio["CkptW"] <= ratio["CkptNvr"] + 1e-9
            assert ratio["CkptW"] <= ratio["CkptAlws"] + 1e-9
            assert ratio["CkptC"] <= ratio["CkptNvr"] + 1e-9
            assert min(r.overhead_ratio for r in subset) >= 1.0
