"""Theory benchmarks — fork and join optimal algorithms versus brute force.

Times the closed-form solvers of Section 4.1 (Theorem 1 for forks, Corollary 1
for equal-cost joins) and verifies on the spot that they match the exhaustive
optimum on small instances — the executable counterpart of the paper's proofs.
"""

from __future__ import annotations

import pytest

from repro import Platform
from repro.theory import optimal_schedule, solve_fork, solve_join_equal_costs
from repro.theory.npcomplete import solve_subset_sum_by_reduction
from repro.workflows import generators

from _bench_utils import record_metric


def test_fork_theorem_vs_bruteforce(benchmark):
    workflow = generators.fork_workflow(6, seed=4, mean_weight=40.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_platform_rate(8e-3, downtime=1.0)
    solution = benchmark(lambda: solve_fork(workflow, platform))
    brute = optimal_schedule(workflow, platform, checkpoint_candidates=[workflow.sources[0]])
    record_metric("theory", fork_expected_makespan=solution.expected_makespan)
    print(
        f"\nfork-7: Theorem-1 optimum {solution.expected_makespan:.2f}s "
        f"(checkpoint source: {solution.checkpoint_source}); brute force {brute.expected_makespan:.2f}s"
    )
    assert solution.expected_makespan == pytest.approx(brute.expected_makespan)


def test_join_corollary_vs_bruteforce(benchmark):
    workflow = generators.join_workflow(5, seed=6, mean_weight=35.0, sink_weight=15.0).with_checkpoint_costs(
        mode="constant", value=3.0
    )
    platform = Platform.from_platform_rate(1e-2, downtime=1.0)
    solution = benchmark(lambda: solve_join_equal_costs(workflow, platform))
    brute = optimal_schedule(workflow, platform)
    print(
        f"\njoin-6: Corollary-1 optimum {solution.expected_makespan:.2f}s "
        f"({len(solution.checkpointed_sources)} checkpointed sources); "
        f"brute force {brute.expected_makespan:.2f}s"
    )
    assert solution.expected_makespan == pytest.approx(brute.expected_makespan, rel=1e-9)


def test_subset_sum_reduction(benchmark):
    """Theorem 2's reduction, driven end to end on a small SUBSET-SUM instance."""
    feasible, subset = benchmark.pedantic(
        lambda: solve_subset_sum_by_reduction([3, 5, 7, 11, 13], 21),
        iterations=1,
        rounds=1,
    )
    print(f"\nSUBSET-SUM([3,5,7,11,13], 21) via the join reduction: {feasible}, subset={sorted(subset)}")
    assert feasible
    assert sum([3, 5, 7, 11, 13][i] for i in subset) == 21
