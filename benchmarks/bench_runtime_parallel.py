"""Campaign runtime — parallel fan-out and content-addressed caching.

Not a paper figure: this benchmark measures the execution layer itself on a
repeated figure sweep.

* **Warm cache**: running the same sweep twice against one
  :class:`repro.runtime.ResultCache` must answer the second pass entirely
  from the cache — zero evaluator calls, a 100% hit rate, and a large
  wall-clock reduction (only instance generation and key hashing remain).
* **Parallel determinism**: fanning the sweep over worker processes must
  reproduce the serial rows exactly (`solve_seconds`, a wall-clock
  measurement, is the one excluded field).  The speedup itself depends on
  the machine's core count, so it is reported, not asserted.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import figure3
from repro.runtime import ResultCache

from _bench_utils import record_metric

_ROW_KEY_FIELDS = (
    "label", "family", "n_tasks", "actual_n_tasks", "heuristic",
    "n_checkpointed", "expected_makespan", "overhead_ratio", "seed",
)


def _comparable(rows):
    return [tuple(getattr(r, f) for f in _ROW_KEY_FIELDS) for r in rows]


@pytest.mark.figure("runtime")
def test_runtime_warm_cache_repeated_sweep(benchmark, figure_sizes, search_mode):
    cache = ResultCache()

    def cold_sweep():
        return figure3(sizes=figure_sizes, seed=0, search_mode=search_mode, cache=cache)

    cold_start = time.perf_counter()
    cold = benchmark.pedantic(cold_sweep, iterations=1, rounds=1)
    cold_seconds = time.perf_counter() - cold_start
    assert cache.stats.hits == 0 and cache.stats.misses == len(cold.rows)

    warm_start = time.perf_counter()
    warm = figure3(sizes=figure_sizes, seed=0, search_mode=search_mode, cache=cache)
    warm_seconds = time.perf_counter() - warm_start

    # The repeated sweep is answered without a single evaluator call.
    assert cache.stats.misses == len(cold.rows)
    assert cache.stats.hits == len(warm.rows)
    assert _comparable(warm.rows) == _comparable(cold.rows)
    assert warm_seconds < cold_seconds

    record_metric(
        "runtime_parallel",
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        warm_speedup=cold_seconds / max(warm_seconds, 1e-9),
    )
    print(
        f"\n--- runtime: warm-cache repeated sweep ({len(cold.rows)} rows) ---\n"
        f"  cold: {cold_seconds:.2f}s   warm: {warm_seconds:.2f}s "
        f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x faster)\n"
        f"  session cache stats: {cache.stats.as_dict()}"
    )


@pytest.mark.figure("runtime")
def test_runtime_parallel_matches_serial(figure_sizes, search_mode):
    serial_start = time.perf_counter()
    serial = figure3(sizes=figure_sizes, seed=0, search_mode=search_mode, jobs=1)
    serial_seconds = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = figure3(sizes=figure_sizes, seed=0, search_mode=search_mode, jobs=2)
    parallel_seconds = time.perf_counter() - parallel_start

    assert _comparable(parallel.rows) == _comparable(serial.rows)
    print(
        f"\n--- runtime: parallel vs serial ({len(serial.rows)} rows) ---\n"
        f"  serial: {serial_seconds:.2f}s   jobs=2: {parallel_seconds:.2f}s\n"
        f"  identical rows: yes (solve_seconds timing field excluded)"
    )
