"""Figure 1 — the worked example DAG and its recovery semantics.

Not an evaluation figure, but the paper's Section-3 walk-through is the
behavioural specification of the execution model.  This benchmark times the
three operations a user performs on the example: evaluating a schedule
analytically, simulating it once with a scripted failure, and estimating it by
Monte Carlo — and prints the resulting numbers side by side.
"""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, evaluate_schedule, run_monte_carlo, simulate_schedule
from repro.simulation import ScriptedFailures
from repro.workflows import generators

from _bench_utils import record_metric


@pytest.fixture(scope="module")
def example_schedule():
    workflow = generators.paper_example_workflow().with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    return Schedule(workflow, (0, 3, 1, 2, 4, 5, 6, 7), {3, 4})


@pytest.mark.figure("figure1")
def test_figure1_analytical_evaluation(benchmark, example_schedule):
    platform = Platform.from_platform_rate(8e-3, downtime=1.0)
    evaluation = benchmark(lambda: evaluate_schedule(example_schedule, platform))
    print(
        f"\nFigure 1 example: E[makespan] = {evaluation.expected_makespan:.2f}s, "
        f"failure-free = {evaluation.failure_free_makespan:.2f}s, "
        f"T/T_inf = {evaluation.overhead_ratio:.3f}"
    )
    record_metric(
        "figure1",
        expected_makespan=evaluation.expected_makespan,
        overhead_ratio=evaluation.overhead_ratio,
    )


@pytest.mark.figure("figure1")
def test_figure1_scripted_failure_replay(benchmark, example_schedule):
    platform = Platform.from_platform_rate(1e-4)

    def replay():
        return simulate_schedule(
            example_schedule,
            platform,
            rng=0,
            failure_model=ScriptedFailures([69.5]),
            collect_trace=True,
        )

    result = benchmark(replay)
    print(
        f"\nScripted single failure during T5: makespan {result.makespan:.2f}s, "
        f"{result.n_failures} failure, recoveries {result.total_recovery_time:.1f}s, "
        f"re-execution {result.total_reexecution_time:.1f}s"
    )


@pytest.mark.figure("figure1")
def test_figure1_monte_carlo_estimate(benchmark, example_schedule, preset):
    platform = Platform.from_platform_rate(8e-3, downtime=1.0)
    n_runs = 2000 if preset == "paper" else 300
    summary = benchmark.pedantic(
        lambda: run_monte_carlo(example_schedule, platform, n_runs=n_runs, rng=1),
        iterations=1,
        rounds=1,
    )
    analytical = evaluate_schedule(example_schedule, platform).expected_makespan
    print(
        f"\nMonte-Carlo ({summary.n_runs} runs): mean {summary.mean_makespan:.2f}s, "
        f"95% CI {summary.ci95[0]:.2f}-{summary.ci95[1]:.2f}s, "
        f"analytical {analytical:.2f}s"
    )
    record_metric(
        "figure1",
        mc_mean_makespan=summary.mean_makespan,
        mc_analytical_makespan=analytical,
    )
