"""Figure 2 — impact of the linearization strategy (DF / BF / RF).

Paper reference: Figure 2 (a) CyberShake, (b) Ligo, (c) Genome with
``c_i = 0.1 w_i``; only the two best checkpointing strategies (CkptW, CkptC)
are shown.  Expected shape: DF is the best linearization almost everywhere
(RF can beat BF on Ligo; the choice barely matters on Montage, which is why
Montage is absent from the paper's figure).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure2

from _bench_utils import maybe_write_series_json, mean_ratio, print_series


@pytest.mark.figure("figure2")
def test_figure2_linearization_impact(benchmark, figure_sizes, search_mode):
    result = benchmark.pedantic(
        lambda: figure2(sizes=figure_sizes, seed=0, search_mode=search_mode),
        iterations=1,
        rounds=1,
    )
    print_series("Figure 2: T/T_inf, linearization impact (c = 0.1 w)", result)

    maybe_write_series_json("figure2", result)
    # Shape check recorded in EXPERIMENTS.md: averaged over the size sweep, the
    # DF linearization is not beaten by BF by more than noise for either of the
    # two best checkpointing strategies.
    for family in result.panels:
        series = result.series(family)
        for strategy in ("CkptW", "CkptC"):
            df = mean_ratio(series, f"DF-{strategy}")
            bf = mean_ratio(series, f"BF-{strategy}")
            assert df <= bf + 0.02, (family, strategy, df, bf)
