"""Ablation A4 — evaluator-guided refinement on top of the paper's heuristics.

The paper stops at static ranking heuristics (CkptW, CkptC, ...).  Because the
Theorem-3 evaluator prices any schedule, a natural extension is to refine the
heuristic's checkpoint set by greedy local search.  This ablation measures how
much expected makespan the refinement recovers and what it costs, on one
instance per workflow family.
"""

from __future__ import annotations

import pytest

from repro import Platform, solve_heuristic
from repro.heuristics import local_search_checkpoints
from repro.workflows import pegasus

from _bench_utils import record_metric

CASES = {
    "montage": 1e-3,
    "cybershake": 1e-3,
    "ligo": 1e-3,
    "genome": 1e-4,
}


@pytest.mark.parametrize("family", sorted(CASES))
def test_local_search_on_top_of_ckptw(benchmark, family, preset):
    n_tasks = 100 if preset == "paper" else 40
    workflow = pegasus.generate(family, n_tasks, seed=17).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_platform_rate(CASES[family])
    start = solve_heuristic(workflow, platform, "DF-CkptW",
                            counts=[5, 10, 20, workflow.n_tasks])

    refined = benchmark.pedantic(
        lambda: local_search_checkpoints(start.schedule, platform, max_steps=10),
        iterations=1,
        rounds=1,
    )
    record_metric(
        "refinement_ablation",
        **{f"{family}_improvement": refined.relative_improvement},
    )
    print(
        f"\n{family}: DF-CkptW {start.expected_makespan:.1f}s -> refined "
        f"{refined.expected_makespan:.1f}s "
        f"(-{100 * refined.relative_improvement:.2f}%, {refined.steps} moves, "
        f"{refined.evaluations} evaluator calls)"
    )
    assert refined.expected_makespan <= start.expected_makespan + 1e-9


@pytest.mark.parametrize("family", ["cybershake"])
def test_refinement_of_periodic_checkpointing(benchmark, family, preset):
    """CkptPer leaves the most on the table; quantify how much refinement recovers."""
    n_tasks = 100 if preset == "paper" else 40
    workflow = pegasus.generate(family, n_tasks, seed=17).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_platform_rate(CASES[family])
    periodic = solve_heuristic(workflow, platform, "DF-CkptPer",
                               counts=[5, 10, 20, workflow.n_tasks])
    best = solve_heuristic(workflow, platform, "DF-CkptW",
                           counts=[5, 10, 20, workflow.n_tasks])

    refined = benchmark.pedantic(
        lambda: local_search_checkpoints(periodic.schedule, platform),
        iterations=1,
        rounds=1,
    )
    print(
        f"\n{family}: DF-CkptPer {periodic.expected_makespan:.1f}s, DF-CkptW "
        f"{best.expected_makespan:.1f}s, refined CkptPer {refined.expected_makespan:.1f}s"
    )
    # Refinement closes (most of) the gap between CkptPer and the best heuristic.
    assert refined.expected_makespan <= periodic.expected_makespan + 1e-9
    assert refined.expected_makespan <= best.expected_makespan * 1.02
