"""Figure 7 — checkpointing strategies versus the platform failure rate.

Paper reference: Figure 7 (a-d): 200-task workflows, ``c = 0.1 w``, failure
rate swept from 1e-4 to 9.3e-4 (1e-6 to 2.7e-4 for Genome).  Expected shape:
every heuristic's overhead grows with the failure rate; the gap between the
searchful strategies and the baselines widens; Genome's ratio explodes at the
high end (the paper's panel reaches ~20 for the worst strategies).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure7

from _bench_utils import maybe_write_series_json, print_series


@pytest.mark.figure("figure7")
def test_figure7_failure_rate_sweep(benchmark, preset, search_mode):
    n_tasks = 200 if preset == "paper" else 40
    result = benchmark.pedantic(
        lambda: figure7(preset=preset, n_tasks=n_tasks, seed=0, search_mode=search_mode),
        iterations=1,
        rounds=1,
    )
    print_series(
        "Figure 7: T/T_inf versus failure rate (c = 0.1 w)", result, x_label="lambda"
    )
    maybe_write_series_json("figure7", result)

    for family in result.panels:
        series = result.series(family)
        for heuristic, points in series.items():
            # Overhead must not decrease when the failure rate increases.
            ratios = [y for _, y in points]
            assert all(a <= b + 1e-6 for a, b in zip(ratios, ratios[1:])), (family, heuristic)
        # At the highest rate, the best searchful strategy beats never-checkpointing.
        top_rate = max(x for x, _ in series["DF-CkptW"])
        ckptw_top = dict(series["DF-CkptW"])[top_rate]
        never_top = dict(series["DF-CkptNvr"])[top_rate]
        assert ckptw_top <= never_top + 1e-9
