"""Overhead benchmark of the distributed campaign fabric.

Measures what the fabric control plane costs over running the identical
campaign in-process: the same small grid is evaluated (a) directly through
:func:`repro.experiments.run_campaign` and (b) through a loopback
:class:`~repro.experiments.fabric.FabricCoordinator` with two
:class:`~repro.experiments.fabric.FabricWorker` threads leasing one shard
each over the JSON-lines TCP control plane.

``speedup = inprocess_seconds / fabric_seconds``.  With two workers on a
two-shard grid the fabric roughly breaks even on this smoke load (the
shards are small enough that lease/heartbeat/transfer overhead is visible);
the committed target is a deliberately conservative floor — the gate exists
to catch the control plane becoming pathologically chatty (per-row round
trips, busy-wait polling), not to promise distributed speedup on a
seconds-long grid.  The report also asserts the byte-identity contract:
the merged fabric report must render identically to the serial one.

* ``pytest benchmarks/bench_fabric_overhead.py`` runs the smoke load and
  writes ``benchmark_results/fabric_overhead.json`` (override with
  ``REPRO_BENCH_JSON``), asserting the committed speedup floor;
* ``python benchmarks/bench_fabric_overhead.py --output o.json`` runs
  standalone (the CI smoke step).  ``benchmarks/check_regression.py``
  gates CI on the ``speedup`` leaf.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.experiments import run_campaign
from repro.experiments.fabric import FabricCoordinator, FabricSpec, FabricWorker

from _bench_utils import add_output_argument, write_json_report, report_scaffold

#: One scenario per shard, two shards: both workers get real work and the
#: byte-identity comparison still covers a multi-scenario merge.
SPEC = FabricSpec(
    families=("montage",),
    sizes=(20, 30),
    seeds=(0, 1, 2),
    heuristics=(
        "DF-CkptNvr", "DF-CkptAlws", "DF-CkptW", "BF-CkptW", "DF-CkptC", "BF-CkptC",
    ),
    search_mode="geometric",
    max_candidates=12,
    n_shards=2,
)
DEFAULT_WORKERS = 2
#: Committed speedup floor (fabric vs in-process, same grid).  Conservative:
#: observed parity is ~1.0x; the floor only trips on control-plane blowups.
TARGET_SPEEDUP = 0.4


def _serial_seconds() -> tuple[float, str]:
    start = time.perf_counter()
    result = run_campaign(
        SPEC.scenarios(),
        seeds=SPEC.seeds,
        search_mode=SPEC.search_mode,
        max_candidates=SPEC.max_candidates,
    )
    return time.perf_counter() - start, result.render()


def _fabric_seconds(workers: int) -> tuple[float, str, dict[str, float]]:
    start = time.perf_counter()
    coordinator = FabricCoordinator(SPEC, ttl=30.0).start()
    try:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    FabricWorker(
                        coordinator.address, name=f"bench-{i}", poll=0.01
                    ).run
                )
                for i in range(workers)
            ]
            coordinator.serve(timeout=300.0)
            completed = sum(f.result() for f in futures)
        elapsed = time.perf_counter() - start
        assert completed == SPEC.n_shards, f"completed {completed} shards"
        counters = {
            name: coordinator.registry.get(f"repro_fabric_{name}_total").value()
            for name in ("leases_granted", "lease_renewals", "shards_completed")
        }
        return elapsed, coordinator.result().render(), counters
    finally:
        coordinator.close()


def fabric_overhead(workers: int = DEFAULT_WORKERS) -> dict:
    """Run both paths over the same grid; return the report."""
    serial_seconds, serial_report = _serial_seconds()
    fabric_seconds, fabric_report, counters = _fabric_seconds(workers)

    # Byte-identity: the distributed merge must not perturb the report.
    assert fabric_report == serial_report, "fabric report diverged from serial"

    report = report_scaffold(
        "fabric_overhead",
        families=list(SPEC.families),
        sizes=list(SPEC.sizes),
        seeds=list(SPEC.seeds),
        heuristics=list(SPEC.heuristics),
        max_candidates=SPEC.max_candidates,
        n_shards=SPEC.n_shards,
        workers=workers,
    )
    report["overhead"] = {
        "inprocess_seconds": serial_seconds,
        "fabric_seconds": fabric_seconds,
        "speedup": serial_seconds / fabric_seconds,
        "leases_granted": int(counters["leases_granted"]),
        "lease_renewals": int(counters["lease_renewals"]),
        "shards_completed": int(counters["shards_completed"]),
        "reports_identical": True,
    }
    return report


def _print_report(report: dict) -> None:
    overhead = report["overhead"]
    print(
        f"{report['params']['n_shards']} shards / "
        f"{report['params']['workers']} workers: "
        f"in-process {overhead['inprocess_seconds']:.2f}s  "
        f"fabric {overhead['fabric_seconds']:.2f}s  "
        f"({overhead['speedup']:.2f}x)\n"
        f"leases granted {overhead['leases_granted']}  "
        f"renewals {overhead['lease_renewals']}  "
        f"shards completed {overhead['shards_completed']}  "
        f"reports identical: {overhead['reports_identical']}"
    )


def _json_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_JSON", "benchmark_results/fabric_overhead.json")
    )


def test_fabric_overhead_json():
    """The fabric control plane stays within the committed overhead floor."""
    report = fabric_overhead()
    path = write_json_report(report, _json_path())
    print(f"\nwrote {path}")
    _print_report(report)
    assert report["overhead"]["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Overhead benchmark of the distributed campaign fabric."
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    add_output_argument(parser)
    args = parser.parse_args(argv)
    report = fabric_overhead(args.workers)
    _print_report(report)
    if args.output:
        path = write_json_report(report, Path(args.output))
        print(f"wrote {path}")
    else:
        print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
