"""Ablation A2 — exhaustive versus subsampled checkpoint-count search.

The paper's heuristics try every checkpoint count ``N = 1 .. n-1``.  For large
instances this is the dominant cost (n evaluator calls per heuristic), so the
harness optionally subsamples the candidate counts on a geometric grid.  This
ablation quantifies both sides: how much faster the subsampled search is, and
how close its best expected makespan stays to the exhaustive optimum.
"""

from __future__ import annotations

import pytest

from repro import Platform
from repro.heuristics import checkpoint_by_weight, candidate_counts, linearize, search_checkpoint_count
from repro.workflows import pegasus

from _bench_utils import record_metric

FAMILIES = ("montage", "cybershake")


@pytest.mark.parametrize("family", FAMILIES)
def test_exhaustive_search(benchmark, family, preset):
    n_tasks = 200 if preset == "paper" else 60
    workflow = pegasus.generate(family, n_tasks, seed=3).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_platform_rate(1e-3)
    order = linearize(workflow, "DF")
    search = benchmark.pedantic(
        lambda: search_checkpoint_count(workflow, order, platform, checkpoint_by_weight),
        iterations=1,
        rounds=1,
    )
    print(
        f"\n{family} exhaustive: best N={search.best_count} "
        f"E[makespan]={search.best_evaluation.expected_makespan:.1f}s "
        f"({len(search.evaluated)} candidates)"
    )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("budget", [8, 16])
def test_geometric_search_accuracy(benchmark, family, budget, preset):
    n_tasks = 200 if preset == "paper" else 60
    workflow = pegasus.generate(family, n_tasks, seed=3).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_platform_rate(1e-3)
    order = linearize(workflow, "DF")

    exhaustive = search_checkpoint_count(workflow, order, platform, checkpoint_by_weight)
    counts = candidate_counts(workflow.n_tasks, mode="geometric", max_candidates=budget)
    subsampled = benchmark.pedantic(
        lambda: search_checkpoint_count(
            workflow, order, platform, checkpoint_by_weight, counts=counts
        ),
        iterations=1,
        rounds=1,
    )
    gap = (
        subsampled.best_evaluation.expected_makespan
        / exhaustive.best_evaluation.expected_makespan
        - 1.0
    )
    record_metric(
        "nsearch_ablation",
        **{f"{family}_geometric_{budget}_gap": gap},
    )
    print(
        f"\n{family} geometric({budget}): best N={subsampled.best_count}, "
        f"gap vs exhaustive = {100 * gap:.3f}% "
        f"({len(subsampled.evaluated)} vs {len(exhaustive.evaluated)} candidates)"
    )
    # The subsampled search stays within 2% of the exhaustive optimum.
    assert gap <= 0.02
