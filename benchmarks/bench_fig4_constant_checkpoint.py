"""Figure 4 — CyberShake with constant / very small checkpoint costs.

Paper reference: Figure 4 (a) ``c_i = 10`` s, (b) ``c_i = 5`` s,
(c) ``c_i = 0.01 w_i``, always on CyberShake, comparing the linearizations for
CkptW and CkptC.  Expected shape: with a *constant* checkpoint cost CkptW
catches up with CkptC (ranking by weight or by cost is no longer equivalent to
the proportional case), and with ``c = 0.01 w`` the overhead ratios collapse to
a few percent (the paper's panel (c) spans only 1.04-1.06).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure4
from repro.experiments.harness import series_by_heuristic

from _bench_utils import maybe_write_series_json, mean_ratio, print_series


@pytest.mark.figure("figure4")
def test_figure4_constant_checkpoint_costs(benchmark, figure_sizes, search_mode):
    result = benchmark.pedantic(
        lambda: figure4(sizes=figure_sizes, seed=0, search_mode=search_mode),
        iterations=1,
        rounds=1,
    )
    print_series("Figure 4: CyberShake, constant / small checkpoint costs", result)

    maybe_write_series_json("figure4", result)
    by_panel = {
        panel: series_by_heuristic([r for r in result.rows if r.label == panel])
        for panel in result.panels
    }

    # Panel (c): with c = 0.01 w the overhead is tiny (paper: 1.04-1.06).
    small = by_panel["cybershake-0.01w"]
    for heuristic in ("DF-CkptW", "DF-CkptC"):
        assert mean_ratio(small, heuristic) < 1.15

    # Constant-cost panels: CkptW is competitive with CkptC (within a few %).
    for panel in ("cybershake-c10", "cybershake-c5"):
        series = by_panel[panel]
        assert mean_ratio(series, "DF-CkptW") <= mean_ratio(series, "DF-CkptC") + 0.05
