"""Figure 6 — checkpointing strategies with constant ``c = 5`` s.

Paper reference: Figure 6 (a-d), the four families with a 5-second checkpoint
cost for every task.  Expected shape: same qualitative ranking as Figure 3;
because the checkpoint cost no longer scales with the task weight, CkptW and
CkptC give very similar results on the families whose tasks have similar sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure6

from _bench_utils import maybe_write_series_json, mean_ratio, print_series


@pytest.mark.figure("figure6")
def test_figure6_constant_costs(benchmark, figure_sizes, search_mode):
    result = benchmark.pedantic(
        lambda: figure6(sizes=figure_sizes, seed=0, search_mode=search_mode),
        iterations=1,
        rounds=1,
    )
    print_series("Figure 6: T/T_inf, checkpointing strategies (c = 5 s)", result)

    maybe_write_series_json("figure6", result)
    for family in result.panels:
        series = result.series(family)
        ckptw = mean_ratio(series, "DF-CkptW")
        never = mean_ratio(series, "DF-CkptNvr")
        always = mean_ratio(series, "DF-CkptAlws")
        assert ckptw <= never + 1e-9
        assert ckptw <= always + 1e-9
        # With a 5 s constant checkpoint, CkptW and CkptC rank tasks differently;
        # report how far apart they land (the paper shows overlapping curves).
        ckptc = mean_ratio(series, "DF-CkptC")
        print(f"  {family}: mean ratio CkptW {ckptw:.3f} vs CkptC {ckptc:.3f} "
              f"(Nvr {never:.3f}, Alws {always:.3f})")
