#!/usr/bin/env python3
"""Compare all fourteen heuristics of the paper on the four workflow families.

This is a miniature version of the paper's Section 6 evaluation: for each
family (Montage, CyberShake, Ligo, Genome) one instance is generated, every
heuristic produces a schedule, and the table of ``T / T_inf`` ratios is printed
(the best heuristic per row is starred).  It finishes with the qualitative
findings the paper highlights.

Run with:  python examples/heuristic_comparison.py [n_tasks]
"""

from __future__ import annotations

import sys

from repro.experiments import (
    Scenario,
    format_ratio_table,
    run_scenario,
)
from repro.experiments.scenarios import DEFAULT_FAILURE_RATES
from repro.heuristics import HEURISTIC_NAMES


def main() -> None:
    n_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    rows = []
    for family in ("montage", "cybershake", "ligo", "genome"):
        scenario = Scenario(
            family=family,
            n_tasks=n_tasks,
            failure_rate=DEFAULT_FAILURE_RATES[family],
            checkpoint_mode="proportional",
            checkpoint_factor=0.1,
            heuristics=HEURISTIC_NAMES,
            seed=1,
            label="example",
        )
        print(f"running {scenario.describe()} ...")
        rows.extend(run_scenario(scenario, search_mode="geometric", max_candidates=20))

    print("\nT / T_inf per heuristic (lower is better, * = best of the row):\n")
    print(format_ratio_table(rows))

    # ------------------------------------------------------------------
    # The paper's qualitative findings, recomputed on these instances.
    # ------------------------------------------------------------------
    by_family: dict[str, list] = {}
    for row in rows:
        by_family.setdefault(row.family, []).append(row)

    print("\nFindings:")
    for family, family_rows in by_family.items():
        best = min(family_rows, key=lambda r: r.overhead_ratio)
        never = next(r for r in family_rows if r.heuristic == "DF-CkptNvr")
        periodic = min(
            (r for r in family_rows if r.checkpoint_strategy == "CkptPer"),
            key=lambda r: r.overhead_ratio,
        )
        print(
            f"  {family:<11} best={best.heuristic:<10} ratio {best.overhead_ratio:5.3f} | "
            f"CkptNvr {never.overhead_ratio:5.3f} | best CkptPer {periodic.overhead_ratio:5.3f}"
        )
    print(
        "\nAs in the paper: the DF linearization combined with CkptW or CkptC wins,"
        "\nthe baselines (never / always / periodic checkpointing) trail behind, and"
        "\nthe gap widens for the workflows with heavy tasks (Ligo, Genome)."
    )


if __name__ == "__main__":
    main()
