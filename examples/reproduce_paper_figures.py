#!/usr/bin/env python3
"""Regenerate the data behind every figure of the paper's evaluation.

Runs the figure-reproduction harness (:mod:`repro.experiments.figures`) and
writes one CSV per figure plus a textual summary comparing the observed trends
with the paper's reported findings.  By default the ``smoke`` preset is used
(small instances, subsampled checkpoint-count search) so the whole script
finishes in a few minutes; pass ``--paper`` to run the full-scale sweep
(50-700 tasks, exhaustive search — hours of compute).

Run with:  python examples/reproduce_paper_figures.py [--paper] [--outdir DIR]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import all_figures, save_rows_csv
from repro.experiments.harness import best_by_strategy


def summarise(figure_name: str, result) -> str:
    lines = [f"== {figure_name}: {result.description} =="]
    for family in result.panels:
        rows = [r for r in result.rows if r.family == family or r.label.startswith(family)]
        if not rows:
            continue
        best = best_by_strategy(rows)
        winners = {}
        for (fam, n, strategy), row in best.items():
            winners.setdefault(strategy, []).append(row.overhead_ratio)
        ranking = sorted(
            ((strategy, sum(vals) / len(vals)) for strategy, vals in winners.items()),
            key=lambda kv: kv[1],
        )
        ranked = ", ".join(f"{name}={value:.3f}" for name, value in ranking)
        lines.append(f"  {family:<16} mean T/T_inf by strategy: {ranked}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="full-scale reproduction (50-700 tasks, exhaustive search)")
    parser.add_argument("--outdir", default="figure_data", help="output directory for CSV files")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    preset = "paper" if args.paper else "smoke"
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    print(f"Reproducing Figures 2-7 with the '{preset}' preset; output -> {outdir}/")
    results = all_figures(preset=preset, seed=args.seed)

    for name, result in results.items():
        path = save_rows_csv(list(result.rows), outdir / f"{name}.csv")
        print(f"\nwrote {path} ({len(result.rows)} rows)")
        print(summarise(name, result))

    print(
        "\nCompare these trends with EXPERIMENTS.md: DF should dominate the other"
        "\nlinearizations, CkptW/CkptC should dominate the baselines and CkptPer,"
        "\nand the overhead should grow with the failure rate (Figure 7)."
    )


if __name__ == "__main__":
    main()
