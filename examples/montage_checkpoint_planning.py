#!/usr/bin/env python3
"""Checkpoint planning for a Montage mosaic workflow.

Scenario: an astronomy group runs a 200-task Montage workflow on a partition
whose MTBF (for the whole partition) is about 20 minutes.  How many checkpoints
should be taken, which tasks should be checkpointed, and how much does the
choice matter?

The script compares the paper's checkpointing strategies under a depth-first
linearization, shows how the expected makespan varies with the number of
checkpoints for CkptW, and prints the chosen checkpoint plan.

Run with:  python examples/montage_checkpoint_planning.py
"""

from __future__ import annotations

from repro import Platform, Schedule, evaluate_schedule
from repro.heuristics import (
    checkpoint_by_weight,
    get_selector,
    linearize,
    search_checkpoint_count,
)
from repro.workflows import pegasus


def ascii_curve(points: dict[int, float], *, width: int = 50) -> str:
    """Tiny ASCII rendering of 'expected makespan vs number of checkpoints'."""
    if not points:
        return "(no data)"
    low = min(points.values())
    high = max(points.values())
    span = max(high - low, 1e-9)
    lines = []
    for count in sorted(points):
        value = points[count]
        bar = "#" * int(round((value - low) / span * width))
        marker = " <- best" if value == low else ""
        lines.append(f"  N={count:>4}  {value:12.1f}s |{bar}{marker}")
    return "\n".join(lines)


def main() -> None:
    workflow = pegasus.montage(200, seed=7).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_mtbf(1_200.0, downtime=30.0)
    print(f"Montage instance: {workflow.n_tasks} tasks, total work "
          f"{workflow.total_weight / 60:.1f} min, platform {platform.describe()}")

    order = linearize(workflow, "DF")

    # --- How much does the number of checkpoints matter for CkptW? -----------
    counts = [1, 2, 5, 10, 20, 40, 80, 120, 160, workflow.n_tasks]
    search = search_checkpoint_count(
        workflow, order, platform, checkpoint_by_weight, counts=counts
    )
    print("\nExpected makespan versus number of checkpoints (CkptW ranking):")
    print(ascii_curve(search.evaluated))

    # --- Compare the checkpoint-selection criteria ---------------------------
    print("\nStrategy comparison (same DF linearization, best N per strategy):")
    print(f"  {'strategy':<10} {'N':>5} {'E[makespan]':>14} {'T/T_inf':>9}")
    for strategy in ("CkptNvr", "CkptAlws", "CkptW", "CkptC", "CkptD", "CkptPer"):
        if strategy == "CkptNvr":
            schedule = Schedule(workflow, order, ())
            evaluation = evaluate_schedule(schedule, platform)
            n_ckpt = 0
        elif strategy == "CkptAlws":
            schedule = Schedule(workflow, order, range(workflow.n_tasks))
            evaluation = evaluate_schedule(schedule, platform)
            n_ckpt = workflow.n_tasks
        else:
            result = search_checkpoint_count(
                workflow, order, platform, get_selector(strategy), counts=counts
            )
            schedule = result.best_schedule
            evaluation = result.best_evaluation
            n_ckpt = schedule.n_checkpointed
        print(f"  {strategy:<10} {n_ckpt:>5} {evaluation.expected_makespan:>13.1f}s "
              f"{evaluation.overhead_ratio:>9.3f}")

    # --- Show the actual plan selected by the best strategy ------------------
    best = search.best_schedule
    by_type: dict[str, int] = {}
    for task_index in best.checkpointed:
        category = workflow.task(task_index).category or "unknown"
        by_type[category] = by_type.get(category, 0) + 1
    print(f"\nCkptW checkpoints {best.n_checkpointed} tasks; breakdown by Montage task type:")
    for category, count in sorted(by_type.items(), key=lambda kv: -kv[1]):
        print(f"  {category:<14} {count}")


if __name__ == "__main__":
    main()
