#!/usr/bin/env python3
"""Quickstart: schedule a small workflow on a failure-prone platform.

This walks through the library's main objects in ~60 lines:

1. build a workflow DAG (here the paper's Figure-1 example),
2. describe the platform (failure rate, downtime),
3. ask a heuristic for a schedule (linearization + checkpoint set),
4. evaluate its expected makespan analytically (Theorem 3),
5. confirm the number by Monte-Carlo fault injection.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Platform, evaluate_schedule, run_monte_carlo, solve_heuristic
from repro.workflows import generators


def main() -> None:
    # 1. A workflow: the 8-task example of Figure 1, with checkpoint costs equal
    #    to 10% of each task's weight (the paper's main experimental setting).
    workflow = generators.paper_example_workflow().with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    print(f"Workflow: {workflow.name} with {workflow.n_tasks} tasks, "
          f"{workflow.n_edges} dependencies, total work {workflow.total_weight:.0f}s")

    # 2. A platform: exponential failures with MTBF = 1000 s and a 10 s downtime.
    platform = Platform.from_mtbf(1_000.0, downtime=10.0)
    print(f"Platform: {platform.describe()}")

    # 3. Run the paper's best-performing heuristic, DF-CkptW: depth-first
    #    linearization, checkpoint the N heaviest tasks, N chosen by exhaustive
    #    search using the polynomial-time evaluator.
    result = solve_heuristic(workflow, platform, "DF-CkptW")
    schedule = result.schedule
    print("\nDF-CkptW schedule (checkpointed tasks are starred):")
    print(f"  {schedule.describe()}")
    print(f"  checkpoints: {result.checkpoint_count}/{workflow.n_tasks}")

    # 4. Analytical evaluation (this is what the heuristic optimised).
    evaluation = evaluate_schedule(schedule, platform)
    print(f"\nExpected makespan (Theorem 3): {evaluation.expected_makespan:.2f}s")
    print(f"Failure-free makespan:          {evaluation.failure_free_makespan:.2f}s")
    print(f"Overhead ratio T / T_inf:       {evaluation.overhead_ratio:.3f}")

    # 5. Cross-check with the fault-injection simulator.
    summary = run_monte_carlo(schedule, platform, n_runs=2_000, rng=42)
    low, high = summary.ci95
    print(f"\nMonte-Carlo mean over {summary.n_runs} runs: {summary.mean_makespan:.2f}s "
          f"(95% CI [{low:.2f}, {high:.2f}], {summary.mean_failures:.2f} failures/run)")

    # Compare against the two baselines of the paper.
    for baseline in ("DF-CkptNvr", "DF-CkptAlws"):
        other = solve_heuristic(workflow, platform, baseline)
        print(f"{baseline:<12} expected makespan {other.expected_makespan:8.2f}s "
              f"(ratio {other.overhead_ratio:.3f})")


if __name__ == "__main__":
    main()
