#!/usr/bin/env python3
"""Validate the analytical evaluator against fault-injection simulation.

The paper's central theoretical result (Theorem 3) is a polynomial-time formula
for the expected makespan of a schedule.  This example rebuilds the evidence a
reviewer would ask for: on several workflow shapes and failure rates, compare
the analytical expectation with the empirical mean of thousands of simulated
executions, and report the deviation in units of the Monte-Carlo standard
error.  It also demonstrates the non-exponential failure models (Weibull /
LogNormal), for which the analytical formula is no longer exact — quantifying
how far off it gets is precisely the kind of study the simulator enables.

Run with:  python examples/montecarlo_validation.py
"""

from __future__ import annotations

from repro import Platform, Schedule, evaluate_schedule, run_monte_carlo
from repro.heuristics import linearize
from repro.simulation import LogNormalFailures, WeibullFailures
from repro.workflows import generators, pegasus


def build_cases():
    """(name, schedule, platform) triples covering chains, forks, joins, DAGs."""
    cases = []

    chain = generators.chain_workflow(8, seed=1, mean_weight=40.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    cases.append(
        ("chain-8 (3 ckpts)", Schedule(chain, range(8), {1, 4, 6}),
         Platform.from_platform_rate(4e-3, downtime=5.0))
    )

    fork = generators.fork_workflow(7, source_weight=60.0, seed=2, mean_weight=25.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    cases.append(
        ("fork-8 (ckpt source)", Schedule(fork, fork.topological_order(), {0}),
         Platform.from_platform_rate(3e-3, downtime=2.0))
    )

    join = generators.join_workflow(7, sink_weight=40.0, seed=3, mean_weight=30.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    cases.append(
        ("join-8 (3 ckpts)", Schedule(join, join.topological_order(), {0, 2, 4}),
         Platform.from_platform_rate(3e-3, downtime=2.0))
    )

    example = generators.paper_example_workflow().with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    cases.append(
        ("paper figure 1", Schedule(example, (0, 3, 1, 2, 4, 5, 6, 7), {3, 4}),
         Platform.from_platform_rate(8e-3, downtime=1.0))
    )

    montage = pegasus.montage(60, seed=4).with_checkpoint_costs(mode="proportional", factor=0.1)
    order = linearize(montage, "DF")
    cases.append(
        ("montage-60 (DF, 1 in 4 ckpt)", Schedule(montage, order, set(order[::4])),
         Platform.from_platform_rate(1e-3))
    )
    return cases


def main() -> None:
    n_runs = 3_000
    print(f"{'case':<30} {'analytical':>12} {'MC mean':>12} {'MC sem':>9} {'deviation':>10}")
    print("-" * 78)
    for name, schedule, platform in build_cases():
        analytical = evaluate_schedule(schedule, platform).expected_makespan
        summary = run_monte_carlo(schedule, platform, n_runs=n_runs, rng=123)
        sigma = summary.sem if summary.sem > 0 else 1e-9
        deviation = (summary.mean_makespan - analytical) / sigma
        print(
            f"{name:<30} {analytical:>11.2f}s {summary.mean_makespan:>11.2f}s "
            f"{summary.sem:>8.2f}s {deviation:>+9.2f}σ"
        )

    # ------------------------------------------------------------------
    # Non-exponential failures: the analytical formula is only an approximation.
    # ------------------------------------------------------------------
    print("\nNon-exponential failure laws (chain-8 schedule, same MTBF of 250 s):")
    chain = generators.chain_workflow(8, seed=1, mean_weight=40.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    schedule = Schedule(chain, range(8), {1, 4, 6})
    platform = Platform.from_platform_rate(4e-3, downtime=5.0)
    analytical = evaluate_schedule(schedule, platform).expected_makespan
    models = {
        "exponential (paper)": None,
        "Weibull k=0.7": WeibullFailures.from_mtbf(250.0, shape=0.7),
        "Weibull k=1.5": WeibullFailures.from_mtbf(250.0, shape=1.5),
        "LogNormal σ=1.0": LogNormalFailures.from_mtbf(250.0, sigma=1.0),
    }
    print(f"{'failure law':<22} {'MC mean':>12} {'vs exponential formula':>25}")
    for label, model in models.items():
        summary = run_monte_carlo(
            schedule, platform, n_runs=n_runs, rng=7, failure_model=model
        )
        delta = 100.0 * (summary.mean_makespan - analytical) / analytical
        print(f"{label:<22} {summary.mean_makespan:>11.2f}s {delta:>+24.1f}%")
    print(
        "\nExponential agreement is within Monte-Carlo noise; the Weibull/LogNormal"
        "\nruns show how much the memoryless assumption matters on this instance."
    )


if __name__ == "__main__":
    main()
