#!/usr/bin/env python3
"""From linear chains (prior work) to general DAGs (this paper).

Prior work (Toueg & Babaoğlu 1984; Bouguerra et al. 2013) solves optimal
checkpoint placement for *linear chains*.  The paper extends the study to
general DAGs, where even evaluating a schedule's expected makespan is
non-trivial.  This example illustrates both sides:

* on a chain, the dynamic program gives the optimum and the paper's heuristics
  come close to it;
* on a general DAG (a LIGO instance), the linearization choice starts to
  matter, which is exactly what the chain model cannot capture;
* on small general DAGs, the heuristics are compared with the true optimum
  obtained by exhaustive search.

Run with:  python examples/chain_vs_general_dag.py
"""

from __future__ import annotations

from repro import Platform, solve_heuristic
from repro.theory import optimal_schedule, solve_chain
from repro.workflows import generators, pegasus


def chain_study() -> None:
    print("=" * 70)
    print("1. Linear chain: heuristics versus the optimal dynamic program")
    print("=" * 70)
    workflow = generators.chain_workflow(15, seed=5, mean_weight=60.0).with_checkpoint_costs(
        mode="proportional", factor=0.1
    )
    platform = Platform.from_mtbf(400.0, downtime=5.0)
    optimum = solve_chain(workflow, platform)
    print(f"chain of {workflow.n_tasks} tasks, MTBF 400s")
    print(f"  optimal DP          : {optimum.expected_makespan:9.1f}s "
          f"({len(optimum.checkpointed)} checkpoints)")
    for heuristic in ("DF-CkptW", "DF-CkptC", "DF-CkptPer", "DF-CkptNvr", "DF-CkptAlws"):
        result = solve_heuristic(workflow, platform, heuristic)
        gap = 100.0 * (result.expected_makespan / optimum.expected_makespan - 1.0)
        print(f"  {heuristic:<20}: {result.expected_makespan:9.1f}s  (+{gap:.2f}% vs optimal)")


def linearization_study() -> None:
    print()
    print("=" * 70)
    print("2. General DAG: the linearization now matters (LIGO, 90 tasks)")
    print("=" * 70)
    workflow = pegasus.ligo(90, seed=3).with_checkpoint_costs(mode="proportional", factor=0.1)
    platform = Platform.from_platform_rate(1e-3)
    for heuristic in ("DF-CkptW", "BF-CkptW", "RF-CkptW", "DF-CkptC", "BF-CkptC", "RF-CkptC"):
        result = solve_heuristic(workflow, platform, heuristic, rng=11,
                                 counts=[5, 15, 30, 60, 89])
        print(f"  {heuristic:<10} T/T_inf = {result.overhead_ratio:6.3f} "
              f"({result.checkpoint_count} checkpoints)")
    print("  -> depth-first traversals keep the amount of at-risk work small.")


def optimality_study() -> None:
    print()
    print("=" * 70)
    print("3. Small general DAGs: heuristics versus the exhaustive optimum")
    print("=" * 70)
    platform = Platform.from_platform_rate(1.5e-2, downtime=2.0)
    for name, workflow in (
        ("diamond", generators.diamond_workflow(weights=[20, 35, 15, 25])),
        ("fork-join (4 branches)", generators.fork_join_workflow(4, seed=2, mean_weight=25.0)),
        ("layered 2x3", generators.layered_workflow(2, 3, seed=8, mean_weight=30.0)),
    ):
        workflow = workflow.with_checkpoint_costs(mode="proportional", factor=0.1)
        brute = optimal_schedule(workflow, platform)
        best_heuristic = min(
            (
                solve_heuristic(workflow, platform, h, rng=0)
                for h in ("DF-CkptW", "DF-CkptC", "DF-CkptD", "BF-CkptW", "RF-CkptW")
            ),
            key=lambda r: r.expected_makespan,
        )
        gap = 100.0 * (best_heuristic.expected_makespan / brute.expected_makespan - 1.0)
        print(f"  {name:<24} optimum {brute.expected_makespan:8.2f}s | "
              f"best heuristic {best_heuristic.heuristic:<9} "
              f"{best_heuristic.expected_makespan:8.2f}s  (+{gap:.2f}%)")
    print("  -> the heuristics stay within a few percent of the optimum on these sizes.")


def main() -> None:
    chain_study()
    linearization_study()
    optimality_study()


if __name__ == "__main__":
    main()
